package cluster

import (
	"net/http"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/leakcheck"
	"etude/internal/model"
	"etude/internal/objstore"
)

// Process tests exec real etude-server binaries; they are skipped with
// -short and guarded against both goroutine and child-process leaks.
func serverBin(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("process tests skipped in -short mode")
	}
	bin, err := ServerBinary()
	if err != nil {
		t.Fatalf("no etude-server binary: %v", err)
	}
	return bin
}

func newProcClusterWithModel(t *testing.T) (*Cluster, string) {
	t.Helper()
	bin := serverBin(t)
	leakcheck.NoChildProcs(t, "etude-server")
	bucket, err := objstore.NewFSBucket(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	manifest := model.Manifest{Model: "gru4rec", Config: model.Config{CatalogSize: 2000, Seed: 1, TopK: 5}}
	data, err := model.MarshalManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	const key = "models/gru4rec.json"
	if err := bucket.Put(key, data); err != nil {
		t.Fatal(err)
	}
	c, err := NewProc(bucket, bin)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Teardown)
	return c, key
}

func TestProcRunnerSpawnDrain(t *testing.T) {
	bin := serverBin(t)
	leakcheck.Check(t)
	leakcheck.NoChildProcs(t, "etude-server")

	r := NewProcRunner()
	defer r.Close()
	st, err := r.Spawn(ProcSpec{Bin: bin, Args: []string{"-static", "-drain-timeout", "2s", "-drain-settle", "10ms"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.PID <= 0 {
		t.Fatalf("spawned pod has no PID: %+v", st)
	}

	// Readiness arrives; both startup phases get measured, in order.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ = r.Status(st.ID)
		if st.State == ProcReady {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pod never became ready: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.ColdStart <= 0 || st.WarmReady < st.ColdStart {
		t.Fatalf("startup phases out of order: cold=%v warm=%v", st.ColdStart, st.WarmReady)
	}

	// SIGTERM drains to a clean exit 0, unforced.
	if err := r.Drain(st.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	final, exited := r.WaitExit(st.ID, 10*time.Second)
	if !exited {
		t.Fatalf("pod did not exit after drain: %+v", final)
	}
	if final.ExitCode != 0 || final.Forced {
		t.Fatalf("drain was not graceful: %+v", final)
	}
}

func TestProcRunnerRestartOnCrash(t *testing.T) {
	bin := serverBin(t)
	leakcheck.NoChildProcs(t, "etude-server")

	r := NewProcRunner()
	defer r.Close()
	st, err := r.Spawn(ProcSpec{
		Bin:            bin,
		Args:           []string{"-static"},
		Restart:        true,
		InitialBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := st.Addr
	if _, ok := waitProcReady(r, st.ID, 10*time.Second); !ok {
		t.Fatal("pod never became ready")
	}

	// A chaos SIGKILL (Signal, not Kill) is an unexpected death: the
	// runner must respawn the pod on the same address.
	if err := r.Signal(st.ID, "KILL"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := r.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Restarts >= 1 && cur.State == ProcReady {
			if cur.Addr != addr {
				t.Fatalf("restart moved the pod: %s -> %s", addr, cur.Addr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pod was not respawned: %+v", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if r.Restarts() < 1 {
		t.Fatalf("runner restart counter = %d, want >= 1", r.Restarts())
	}

	// An operator Kill is final: no respawn.
	if err := r.Kill(st.ID); err != nil {
		t.Fatal(err)
	}
	final, exited := r.WaitExit(st.ID, 10*time.Second)
	if !exited {
		t.Fatal("pod did not exit after Kill")
	}
	time.Sleep(100 * time.Millisecond) // give a buggy respawn time to happen
	cur, _ := r.Status(st.ID)
	if cur.State != ProcExited || cur.Restarts != final.Restarts {
		t.Fatalf("operator kill must not respawn: %+v", cur)
	}
}

func waitProcReady(r *ProcRunner, id int, timeout time.Duration) (ProcStatus, bool) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := r.Status(id)
		if err != nil {
			return st, false
		}
		if st.State == ProcReady {
			return st, true
		}
		if time.Now().After(deadline) {
			return st, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestControlPlaneAPIAndMetrics(t *testing.T) {
	bin := serverBin(t)
	leakcheck.NoChildProcs(t, "etude-server")

	cp, err := StartControlPlane(bin)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	client := cp.Client()

	st, err := client.Spawn(ProcSpec{Args: []string{"-static"}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err = client.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == ProcReady {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pod never ready over the API: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	list, err := client.List()
	if err != nil || len(list) != 1 {
		t.Fatalf("List = %v, %v; want 1 pod", list, err)
	}

	// The exposition carries the fleet metrics (PR 3 parse-back
	// convention): restart counter, up gauge, startup summaries.
	samples, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s.Value)
	}
	if got, ok := byName["etude_pod_restarts_total"]; !ok || got[0] != 0 {
		t.Fatalf("etude_pod_restarts_total = %v, want [0]", got)
	}
	if got, ok := byName["etude_pod_up"]; !ok || got[0] != 1 {
		t.Fatalf("etude_pod_up = %v, want [1]", got)
	}
	if _, ok := byName["etude_pod_coldstart_seconds_count"]; !ok {
		t.Fatalf("missing etude_pod_coldstart_seconds summary; families: %v", keys(byName))
	}
	if _, ok := byName["etude_pod_warmready_seconds_count"]; !ok {
		t.Fatalf("missing etude_pod_warmready_seconds summary; families: %v", keys(byName))
	}

	// Unknown pods are API errors, not crashes.
	if _, err := client.Status(99); err == nil {
		t.Fatal("Status(99) should fail")
	}
	if err := client.Signal(st.ID, "NOSUCH"); err == nil {
		t.Fatal("bad signal name should fail")
	}

	if err := client.Forget(st.ID); err != nil {
		t.Fatal(err)
	}
	if rest, err := client.List(); err != nil || len(rest) != 0 {
		t.Fatalf("after Forget: List = %v, %v; want empty", rest, err)
	}
}

func keys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// The full deployment flow on the process backend: Deploy readiness-gates
// real processes, requests flow end to end, a SIGKILLed pod is repaired by
// the same Supervisor that serves the in-process backend, and Teardown
// leaves no orphans (the NoChildProcs guard asserts the last part).
func TestProcClusterDeployServeSuperviseTeardown(t *testing.T) {
	c, key := newProcClusterWithModel(t)
	if c.Backend() != "proc" {
		t.Fatalf("backend = %q, want proc", c.Backend())
	}
	svc, err := c.Deploy(ctx(t), "fleet", PodSpec{
		Runtime:      RuntimeEtude,
		ModelKey:     key,
		DrainTimeout: 2 * time.Second,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}

	pods := svc.Pods()
	if len(pods) != 2 {
		t.Fatalf("pods = %d", len(pods))
	}
	for _, p := range pods {
		if p.ColdStart() <= 0 {
			t.Fatalf("pod %d cold start unmeasured", p.Replica())
		}
		if p.WarmReady() < p.ColdStart() {
			t.Fatalf("pod %d warm-ready %v < cold-start %v", p.Replica(), p.WarmReady(), p.ColdStart())
		}
	}

	tgt := svc.Target()
	for i := 0; i < 4; i++ {
		if err := tgt.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{1, 2, 3}}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// Real crash, real repair: SIGKILL one pod and let the supervisor
	// bring a replacement to readiness.
	sup, err := c.Supervise("fleet", RestartPolicy{
		ProbeInterval:  25 * time.Millisecond,
		FailThreshold:  2,
		InitialBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	victim := pods[0]
	if err := svc.SignalPod(victim.Replica(), "KILL"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for sup.Restarts() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never repaired the SIGKILLed pod")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if mttr := sup.MTTR(); mttr <= 0 {
		t.Fatalf("MTTR = %v, want > 0", mttr)
	}
	// The replacement is a ready process pod; requests flow again.
	if err := tgt.Predict(ctx(t), httpapi.PredictRequest{Items: []int64{4, 5}}); err != nil {
		t.Fatalf("request after repair: %v", err)
	}
	sup.Stop()

	// Graceful delete: no forced kills on an idle fleet.
	if err := c.Delete("fleet"); err != nil {
		t.Fatal(err)
	}
	if n := c.ForcedKills(); n != 0 {
		t.Fatalf("forced kills on idle graceful delete = %d, want 0", n)
	}
}

// Signals on the in-process backend fail with ErrNoProcess; through the
// service they are dropped for departed ordinals on both backends.
func TestSignalSemanticsPerBackend(t *testing.T) {
	c, key := newClusterWithModel(t)
	svc, err := c.Deploy(ctx(t), "sig", PodSpec{Runtime: RuntimeEtude, ModelKey: key}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Pods()[0].Signal("KILL"); err != ErrNoProcess {
		t.Fatalf("inproc Signal = %v, want ErrNoProcess", err)
	}
	if err := svc.SignalPod(42, "KILL"); err != nil {
		t.Fatalf("signal to departed ordinal = %v, want silent drop", err)
	}
}

// A static process pod is ready almost immediately after it is live, while
// a model-loading pod has a measurable gap — the distinction the
// bootstrap-handler split exists to expose.
func TestProcColdStartPrecedesModelLoad(t *testing.T) {
	bin := serverBin(t)
	leakcheck.NoChildProcs(t, "etude-server")
	r := NewProcRunner()
	defer r.Close()

	st, err := r.Spawn(ProcSpec{Bin: bin, Args: []string{"-model", "gru4rec", "-catalog", "20000"}})
	if err != nil {
		t.Fatal(err)
	}
	ready, ok := waitProcReady(r, st.ID, 20*time.Second)
	if !ok {
		t.Fatalf("model pod never ready: %+v", ready)
	}
	if ready.WarmReady <= ready.ColdStart {
		t.Fatalf("model load should separate warm-ready (%v) from cold-start (%v)", ready.WarmReady, ready.ColdStart)
	}

	// While a (fresh) pod is loading its model, /live answers and /ping
	// does not — probe the bootstrap window directly.
	st2, err := r.Spawn(ProcSpec{Bin: bin, Args: []string{"-model", "gru4rec", "-catalog", "20000"}})
	if err != nil {
		t.Fatal(err)
	}
	probe := &http.Client{Timeout: 200 * time.Millisecond}
	sawBootstrap := false
	bootDeadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(bootDeadline) {
		live, errLive := probe.Get("http://" + st2.Addr + httpapi.LivePath)
		if errLive == nil {
			ready, errReady := probe.Get("http://" + st2.Addr + httpapi.ReadyPath)
			liveOK := live.StatusCode == http.StatusOK
			live.Body.Close()
			if errReady == nil {
				notReady := ready.StatusCode != http.StatusOK
				ready.Body.Close()
				if liveOK && notReady {
					sawBootstrap = true
				}
				if liveOK && !notReady {
					break // fully up
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawBootstrap {
		t.Log("model loaded too fast to observe the bootstrap window (ok on fast machines)")
	}
}
