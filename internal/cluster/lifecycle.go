package cluster

import (
	"context"
	"fmt"
	"time"
)

// RolloutConfig tunes RollingUpdate's batching, mirroring a Kubernetes
// Deployment's rollingUpdate strategy.
type RolloutConfig struct {
	// MaxSurge is how many replacement pods may run above the target
	// replica count while old pods still exist (default 1). Larger surge
	// finishes the rollout in fewer waves at the cost of peak capacity.
	MaxSurge int
	// MaxUnavailable is how many old pods may be taken down before their
	// replacements are ready (default 0: capacity never dips — each wave
	// starts and readies new pods first, then drains old ones).
	MaxUnavailable int
	// Drain controls whether old pods are gracefully drained (readiness
	// fail → leave rotation → finish in-flight work) or force-closed on the
	// spot. Disabling it is the experiment's control arm: it demonstrates
	// the error spike a drainless rollout inflicts on live traffic.
	// Default true.
	Drain *bool
	// EndpointLag applies only with Drain disabled: how long the rotation
	// keeps routing to a force-closed pod before learning it is gone,
	// modeling the asynchronous endpoint propagation (kube-proxy
	// reprogramming) that the drain sequence sidesteps by leaving the
	// rotation *before* shutting down. During the lag, picks of the dead
	// pod fail until its breaker ejects it. Default 0 (immediate removal —
	// still drainless for in-flight requests).
	EndpointLag time.Duration
}

func (c RolloutConfig) withDefaults() RolloutConfig {
	if c.MaxSurge <= 0 {
		c.MaxSurge = 1
	}
	if c.MaxUnavailable < 0 {
		c.MaxUnavailable = 0
	}
	if c.Drain == nil {
		t := true
		c.Drain = &t
	}
	return c
}

// Scale sets the deployment's replica count. Scaling up starts new pods,
// waits for their readiness probes and only then adds them to the rotation;
// scaling down gracefully drains the highest-ordinal pods, concurrently.
// Scaling to the current count is a no-op.
func (c *Cluster) Scale(ctx context.Context, name string, replicas int) error {
	if replicas < 1 {
		return fmt.Errorf("cluster: deployment %q cannot scale below one replica", name)
	}
	svc, ok := c.Service(name)
	if !ok {
		return fmt.Errorf("cluster: no deployment %q", name)
	}
	svc.opMu.Lock()
	defer svc.opMu.Unlock()

	svc.mu.Lock()
	spec := svc.spec
	current := len(svc.pods)
	svc.mu.Unlock()

	switch {
	case replicas > current:
		added, err := c.startReadyPods(ctx, svc, spec, replicas-current)
		if err != nil {
			return fmt.Errorf("cluster: scaling %q to %d: %w", name, replicas, err)
		}
		svc.addPods(added)
	case replicas < current:
		pods := svc.Pods()
		svc.drainPods(pods[replicas:], spec.drainTimeout())
	}
	return nil
}

// RollingUpdate replaces the deployment's pods with pods running newSpec,
// wave by wave, without ever dropping below replicas-MaxUnavailable ready
// pods or exceeding replicas+MaxSurge total pods. With the defaults (surge
// 1, unavailable 0, drain on) each wave starts one new pod, gates on its
// readiness probe, admits it to the rotation, and then gracefully drains
// one old pod — so a fleet under sustained load completes a full model swap
// with zero failed requests.
//
// A wave that fails to start or ready its new pods aborts the rollout; the
// service keeps the mixed pod set it had reached, all of it ready and
// routable.
func (c *Cluster) RollingUpdate(ctx context.Context, name string, newSpec PodSpec, cfg RolloutConfig) error {
	cfg = cfg.withDefaults()
	svc, ok := c.Service(name)
	if !ok {
		return fmt.Errorf("cluster: no deployment %q", name)
	}
	svc.opMu.Lock()
	defer svc.opMu.Unlock()

	old := svc.Pods()
	grace := svc.Spec().drainTimeout()
	svc.mu.Lock()
	svc.spec = newSpec
	svc.mu.Unlock()

	for len(old) > 0 {
		wave := cfg.MaxSurge
		if cfg.MaxUnavailable > cfg.MaxSurge {
			wave = cfg.MaxUnavailable
		}
		if wave > len(old) {
			wave = len(old)
		}
		victims := old[:wave]
		old = old[wave:]

		// Surge-first (MaxUnavailable 0): replacements must be ready before
		// any old pod leaves. Unavailable-first: old pods leave before their
		// replacements exist — capacity dips, but no surge capacity is
		// needed.
		if cfg.MaxUnavailable == 0 {
			added, err := c.startReadyPods(ctx, svc, newSpec, wave)
			if err != nil {
				return fmt.Errorf("cluster: rolling update of %q: %w", name, err)
			}
			svc.addPods(added)
			c.retirePods(svc, victims, cfg, grace)
		} else {
			c.retirePods(svc, victims, cfg, grace)
			added, err := c.startReadyPods(ctx, svc, newSpec, wave)
			if err != nil {
				return fmt.Errorf("cluster: rolling update of %q: %w", name, err)
			}
			svc.addPods(added)
		}
	}
	return nil
}

// retirePods removes old pods either via the graceful drain sequence or —
// drain disabled — by force-closing them first and only telling the
// balancers afterwards (after EndpointLag), exactly the ordering mistake
// that makes drainless rollouts visible as an error spike.
func (c *Cluster) retirePods(svc *Service, victims []*Pod, cfg RolloutConfig, grace time.Duration) {
	if *cfg.Drain {
		svc.drainPods(victims, grace)
		return
	}
	for _, p := range victims {
		p.forceStop()
		c.forcedKills.Add(1)
		logEvent().Warn("drainless rollout force-killed pod",
			"deployment", svc.Name(), "replica", p.Replica())
	}
	if cfg.EndpointLag > 0 {
		time.Sleep(cfg.EndpointLag)
	}
	svc.removePods(victims)
}

// startReadyPods starts n pods with fresh ordinals and waits for each one's
// readiness probe. On any failure it stops whatever it started and returns
// the error — half a wave never reaches the rotation.
func (c *Cluster) startReadyPods(ctx context.Context, svc *Service, spec PodSpec, n int) ([]*Pod, error) {
	pods := make([]*Pod, 0, n)
	fail := func(err error) ([]*Pod, error) {
		for _, p := range pods {
			p.forceStop()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		svc.mu.Lock()
		ordinal := svc.nextOrdinal
		svc.nextOrdinal++
		svc.mu.Unlock()
		pod, err := c.backend.start(spec, ordinal)
		if err != nil {
			return fail(fmt.Errorf("starting replica %d: %w", ordinal, err))
		}
		pods = append(pods, pod)
	}
	for _, pod := range pods {
		if err := waitPodReady(ctx, pod); err != nil {
			return fail(fmt.Errorf("readiness probe for %s: %w", pod.Addr(), err))
		}
	}
	return pods, nil
}
