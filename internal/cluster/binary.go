package cluster

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// ServerBinEnv names an etude-server binary to use instead of building
// one — `make check` exports it so every process test shares one build.
const ServerBinEnv = "ETUDE_SERVER_BIN"

var (
	serverBinOnce sync.Once
	serverBinPath string
	serverBinErr  error
)

// ServerBinary returns the path of an etude-server binary for process
// pods: $ETUDE_SERVER_BIN when set (and existing), otherwise a one-time
// `go build` of ./cmd/etude-server into a temp directory, cached for the
// process lifetime. Building requires the go toolchain and the module
// source tree — callers in stripped environments should set the env var.
func ServerBinary() (string, error) {
	serverBinOnce.Do(func() {
		if bin := os.Getenv(ServerBinEnv); bin != "" {
			if _, err := os.Stat(bin); err != nil {
				serverBinErr = fmt.Errorf("cluster: $%s=%s: %w", ServerBinEnv, bin, err)
				return
			}
			serverBinPath, serverBinErr = filepath.Abs(bin)
			return
		}
		serverBinPath, serverBinErr = buildServerBinary()
	})
	return serverBinPath, serverBinErr
}

func buildServerBinary() (string, error) {
	gomod, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("cluster: locating module root: %w", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(gomod)))
	if root == "." || root == "" {
		return "", fmt.Errorf("cluster: no module root (GOMOD=%q); set $%s", gomod, ServerBinEnv)
	}
	dir, err := os.MkdirTemp("", "etude-bin-")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "etude-server")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/etude-server")
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("cluster: building etude-server: %v\n%s", err, out.String())
	}
	return bin, nil
}
