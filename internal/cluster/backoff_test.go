package cluster

import (
	"testing"
	"time"
)

// The backoff schedule is pure arithmetic over an explicit clock, so the
// exact CrashLoopBackOff discipline is assertable without sleeping: capped
// doubling while crashes come quickly, reset to the initial delay after a
// healthy stretch.
func TestRestartBackoffSchedule(t *testing.T) {
	b := restartBackoff{
		Initial:      100 * time.Millisecond,
		Max:          800 * time.Millisecond,
		HealthyReset: 10 * time.Second,
	}
	now := time.Unix(1000, 0)

	// Consecutive crashes 1s apart: double every time, capped at Max.
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
		800 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(now); got != w {
			t.Fatalf("crash %d: backoff = %v, want %v", i, got, w)
		}
		now = now.Add(time.Second)
	}

	// A crash after a healthy stretch starts the schedule over.
	now = now.Add(b.HealthyReset + time.Second)
	if got := b.Next(now); got != 100*time.Millisecond {
		t.Fatalf("after healthy stretch: backoff = %v, want reset to %v", got, 100*time.Millisecond)
	}
	// ... and escalates again from there.
	now = now.Add(time.Second)
	if got := b.Next(now); got != 200*time.Millisecond {
		t.Fatalf("second crash after reset: backoff = %v, want %v", got, 200*time.Millisecond)
	}
}

// A crash exactly at the HealthyReset boundary still escalates (the reset
// needs a strictly longer gap), pinning the boundary semantics.
func TestRestartBackoffBoundary(t *testing.T) {
	b := restartBackoff{Initial: time.Second, Max: time.Minute, HealthyReset: 10 * time.Second}
	now := time.Unix(2000, 0)
	b.Next(now)
	if got := b.Next(now.Add(10 * time.Second)); got != 2*time.Second {
		t.Fatalf("gap == HealthyReset: backoff = %v, want escalation to 2s", got)
	}
}

func TestRestartBackoffDefaults(t *testing.T) {
	var b restartBackoff
	now := time.Unix(3000, 0)
	if got := b.Next(now); got != 100*time.Millisecond {
		t.Fatalf("zero-value initial = %v, want 100ms", got)
	}
	// Escalate to the default 5s cap.
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		b.Next(now)
	}
	now = now.Add(time.Second)
	if got := b.Next(now); got != 5*time.Second {
		t.Fatalf("zero-value cap = %v, want 5s", got)
	}
}

func TestRestartBackoffReset(t *testing.T) {
	b := restartBackoff{Initial: time.Second, Max: time.Minute, HealthyReset: time.Hour}
	now := time.Unix(4000, 0)
	b.Next(now)
	b.Next(now.Add(time.Second))
	b.Reset()
	if got := b.Next(now.Add(2 * time.Second)); got != time.Second {
		t.Fatalf("after Reset: backoff = %v, want %v", got, time.Second)
	}
}
