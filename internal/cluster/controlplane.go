// The local control plane: a daemon that supervises real etude-server
// processes over an HTTP/JSON API — the buildkite/cleanroom shape (a
// daemon owning isolated execution environments behind an RPC surface)
// scaled down to one machine. The cluster's process backend is a client
// of this API, never of the processes directly, so every lifecycle
// transition (spawn → ready → drain → kill) crosses one auditable
// chokepoint, and anything else — a CLI, a test, a chaos driver — can
// drive the same fleet by speaking the same protocol.
//
// Pod state machine, as observed through the API:
//
//	spawn                 → starting   (exec'd; /live not yet up)
//	/live 200             → starting   (cold-start recorded: exec → live)
//	/ping 200             → ready      (warm-ready recorded: exec → ready)
//	drain (SIGTERM)       → draining   (readiness fails, in-flight completes)
//	exit 0                → exited     (graceful)
//	drain deadline        → exited     (forced: server self-kills non-zero,
//	                                    or the runner escalates to SIGKILL)
//	kill / chaos SIGKILL  → exited     (exit code -1, killed by signal)
//
// GET /metrics exposes the fleet's restart counter, per-pod up gauges and
// the cold-start/warm-ready distributions in Prometheus text format.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
)

// Control-plane API paths. Pod-scoped routes take the pod ID as the
// {id} path value.
const (
	cpPodsPath   = "/v1/pods"
	cpDrainPath  = "/v1/pods/{id}/drain"
	cpKillPath   = "/v1/pods/{id}/kill"
	cpSignalPath = "/v1/pods/{id}/signal"
	cpPodPath    = "/v1/pods/{id}"
)

// SpawnRequest asks the control plane to exec one server process.
type SpawnRequest struct {
	// Spec declares the binary, args, and restart policy. An empty
	// Spec.Bin falls back to the daemon's default binary.
	Spec ProcSpec `json:"spec"`
}

// drainRequest carries the runner-side SIGKILL escalation bound.
type drainRequest struct {
	EscalateAfter time.Duration `json:"escalate_after"`
}

// signalRequest names the POSIX signal to deliver.
type signalRequest struct {
	Signal string `json:"signal"`
}

// cpError is the wire shape of a control-plane failure.
type cpError struct {
	Error string `json:"error"`
}

// ControlPlane is the daemon: an HTTP server on loopback wrapping a
// ProcRunner. Start with StartControlPlane, stop with Close (which reaps
// every child).
type ControlPlane struct {
	runner     *ProcRunner
	defaultBin string
	http       *http.Server
	addr       string
}

// StartControlPlane launches the daemon on a loopback port. defaultBin is
// used for spawn requests that do not name a binary ("" forces every
// request to be explicit).
func StartControlPlane(defaultBin string) (*ControlPlane, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: control plane listen: %w", err)
	}
	cp := &ControlPlane{
		runner:     NewProcRunner(),
		defaultBin: defaultBin,
		addr:       ln.Addr().String(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+cpPodsPath, cp.handleSpawn)
	mux.HandleFunc("GET "+cpPodsPath, cp.handleList)
	mux.HandleFunc("GET "+cpPodPath, cp.handleStatus)
	mux.HandleFunc("DELETE "+cpPodPath, cp.handleForget)
	mux.HandleFunc("POST "+cpDrainPath, cp.handleDrain)
	mux.HandleFunc("POST "+cpKillPath, cp.handleKill)
	mux.HandleFunc("POST "+cpSignalPath, cp.handleSignal)
	mux.HandleFunc("GET "+httpapi.MetricsPath, cp.handleMetrics)
	cp.http = &http.Server{Handler: mux}
	go func() { _ = cp.http.Serve(ln) }()
	return cp, nil
}

// Addr returns the daemon's host:port.
func (cp *ControlPlane) Addr() string { return cp.addr }

// Runner exposes the underlying process runner (tests, metrics).
func (cp *ControlPlane) Runner() *ProcRunner { return cp.runner }

// Client returns a client bound to this daemon.
func (cp *ControlPlane) Client() *ControlPlaneClient {
	return NewControlPlaneClient(cp.addr)
}

// Close shuts the API down and reaps every supervised process.
func (cp *ControlPlane) Close() {
	_ = cp.http.Close()
	cp.runner.Close()
}

func cpWriteErr(w http.ResponseWriter, status int, err error) {
	httpapi.WriteJSON(w, status, cpError{Error: err.Error()})
}

func (cp *ControlPlane) podID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		cpWriteErr(w, http.StatusBadRequest, fmt.Errorf("bad pod id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func (cp *ControlPlane) handleSpawn(w http.ResponseWriter, r *http.Request) {
	var req SpawnRequest
	if err := httpapi.ReadJSON(r.Body, &req); err != nil {
		cpWriteErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Spec.Bin == "" {
		req.Spec.Bin = cp.defaultBin
	}
	st, err := cp.runner.Spawn(req.Spec)
	if err != nil {
		cpWriteErr(w, http.StatusInternalServerError, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, st)
}

func (cp *ControlPlane) handleList(w http.ResponseWriter, r *http.Request) {
	httpapi.WriteJSON(w, http.StatusOK, cp.runner.List())
}

func (cp *ControlPlane) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, ok := cp.podID(w, r)
	if !ok {
		return
	}
	st, err := cp.runner.Status(id)
	if err != nil {
		cpWriteErr(w, http.StatusNotFound, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, st)
}

func (cp *ControlPlane) handleForget(w http.ResponseWriter, r *http.Request) {
	id, ok := cp.podID(w, r)
	if !ok {
		return
	}
	if err := cp.runner.Forget(id); err != nil {
		cpWriteErr(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (cp *ControlPlane) handleDrain(w http.ResponseWriter, r *http.Request) {
	id, ok := cp.podID(w, r)
	if !ok {
		return
	}
	var req drainRequest
	// An empty body means "no escalation"; only reject malformed JSON.
	if err := httpapi.ReadJSON(r.Body, &req); err != nil && !errors.Is(err, io.EOF) {
		cpWriteErr(w, http.StatusBadRequest, err)
		return
	}
	if err := cp.runner.Drain(id, req.EscalateAfter); err != nil {
		cpWriteErr(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (cp *ControlPlane) handleKill(w http.ResponseWriter, r *http.Request) {
	id, ok := cp.podID(w, r)
	if !ok {
		return
	}
	if err := cp.runner.Kill(id); err != nil {
		cpWriteErr(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (cp *ControlPlane) handleSignal(w http.ResponseWriter, r *http.Request) {
	id, ok := cp.podID(w, r)
	if !ok {
		return
	}
	var req signalRequest
	if err := httpapi.ReadJSON(r.Body, &req); err != nil {
		cpWriteErr(w, http.StatusBadRequest, err)
		return
	}
	if err := cp.runner.Signal(id, req.Signal); err != nil {
		cpWriteErr(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (cp *ControlPlane) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pb := metrics.NewPromBuilder()
	cp.runner.WriteMetrics(pb)
	w.Header().Set("Content-Type", metrics.PromContentType)
	_, _ = io.WriteString(w, pb.String())
}

// ControlPlaneClient is the typed client of the daemon's HTTP/JSON API —
// what the cluster's process backend and the chaos driver speak.
type ControlPlaneClient struct {
	base string
	http *http.Client
}

// NewControlPlaneClient returns a client for the daemon at addr
// (host:port).
func NewControlPlaneClient(addr string) *ControlPlaneClient {
	return &ControlPlaneClient{
		base: "http://" + addr,
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *ControlPlaneClient) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cluster: encoding control-plane request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: control plane unreachable: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var ce cpError
		if err := httpapi.ReadJSON(resp.Body, &ce); err == nil && ce.Error != "" {
			return fmt.Errorf("cluster: control plane: %s", ce.Error)
		}
		return fmt.Errorf("cluster: control plane returned HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return httpapi.ReadJSON(resp.Body, out)
}

func podPath(id int, suffix string) string {
	return "/v1/pods/" + strconv.Itoa(id) + suffix
}

// Spawn execs one server process.
func (c *ControlPlaneClient) Spawn(spec ProcSpec) (ProcStatus, error) {
	var st ProcStatus
	err := c.do(http.MethodPost, cpPodsPath, SpawnRequest{Spec: spec}, &st)
	return st, err
}

// Status fetches one pod's state.
func (c *ControlPlaneClient) Status(id int) (ProcStatus, error) {
	var st ProcStatus
	err := c.do(http.MethodGet, podPath(id, ""), nil, &st)
	return st, err
}

// List fetches every pod's state.
func (c *ControlPlaneClient) List() ([]ProcStatus, error) {
	var out []ProcStatus
	err := c.do(http.MethodGet, cpPodsPath, nil, &out)
	return out, err
}

// Drain begins a graceful shutdown (SIGTERM), optionally arming the
// runner-side SIGKILL escalation.
func (c *ControlPlaneClient) Drain(id int, escalate time.Duration) error {
	return c.do(http.MethodPost, podPath(id, "/drain"), drainRequest{EscalateAfter: escalate}, nil)
}

// Kill SIGKILLs the pod.
func (c *ControlPlaneClient) Kill(id int) error {
	return c.do(http.MethodPost, podPath(id, "/kill"), nil, nil)
}

// Signal delivers a named POSIX signal (chaos: "KILL", "STOP", "CONT",
// "TERM") without marking the pod stopped.
func (c *ControlPlaneClient) Signal(id int, sig string) error {
	return c.do(http.MethodPost, podPath(id, "/signal"), signalRequest{Signal: sig}, nil)
}

// Forget kills and removes the pod from the daemon's table.
func (c *ControlPlaneClient) Forget(id int) error {
	return c.do(http.MethodDelete, podPath(id, ""), nil, nil)
}

// WaitExit polls until the pod's process exits or timeout elapses; ok is
// false on timeout.
func (c *ControlPlaneClient) WaitExit(id int, timeout time.Duration) (ProcStatus, bool) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, false
		}
		if st.State == ProcExited {
			return st, true
		}
		if time.Now().After(deadline) {
			return st, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Metrics fetches and parses the daemon's /metrics exposition.
func (c *ControlPlaneClient) Metrics() ([]metrics.PromSample, error) {
	resp, err := c.http.Get(c.base + httpapi.MetricsPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return metrics.ParsePromText(resp.Body)
}
