// Package cluster is the Kubernetes stand-in of this reproduction: it
// deploys inference servers as in-process "pods" listening on real local
// ports, gates them behind readiness probes (the paper: "once the model
// deployment is finished — determined via Kubernetes's readiness probes —
// a ClusterIP service interface is deployed"), and exposes a round-robin
// ClusterIP-style service that the load generator targets.
//
// Pods host either ETUDE's own inference server (internal/server) or the
// TorchServe baseline (internal/torchserve); model artifacts are pulled
// from an object-store bucket, mirroring the paper's deployment flow.
//
// Beyond static deployments, the package implements the fleet operations a
// production recommendation service lives on: graceful drain (a pod marked
// for removal fails its readiness probe, leaves the balancer rotation,
// finishes in-flight work and only then shuts down — see Pod and
// Service.drainPods), live scaling (Cluster.Scale), rolling updates with
// max-surge/max-unavailable semantics (Cluster.RollingUpdate), and
// liveness-probe-driven pod supervision with capped restart backoff
// (Cluster.Supervise).
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/deploy"
	"etude/internal/httpapi"
	"etude/internal/loadgen"
	"etude/internal/objstore"
	"etude/internal/server"
	"etude/internal/torchserve"
)

// DefaultDrainTimeout bounds a pod's graceful shutdown when the spec does
// not set one: in-flight requests get this long to finish before the pod is
// force-closed.
const DefaultDrainTimeout = 5 * time.Second

// drainSettle is the gap between leaving the rotation and closing the
// listener — the preStop-sleep of real deployments. A request that picked
// the pod an instant before the endpoint update must still be able to
// establish its connection; closing the listener immediately would refuse
// it and a "graceful" drain would still fail a handful of racing requests.
const drainSettle = 100 * time.Millisecond

// Runtime selects which serving engine a pod runs.
type Runtime int

const (
	// RuntimeEtude runs the internal/server inference server.
	RuntimeEtude Runtime = iota
	// RuntimeEtudeStatic runs the static (no-model) ETUDE server.
	RuntimeEtudeStatic
	// RuntimeTorchServe runs the TorchServe baseline simulator.
	RuntimeTorchServe
)

// PodSpec declares what one pod runs.
type PodSpec struct {
	// Runtime selects the serving engine.
	Runtime Runtime
	// ModelKey locates the model manifest in the cluster's bucket (ignored
	// by the static runtime; optional for TorchServe).
	ModelKey string
	// Releases deploys the ETUDE runtime from the bucket's versioned release
	// store (internal/deploy) instead of a raw ModelKey manifest: the pod
	// serves ModelVersion (0 = the store's CURRENT pointer) and exposes the
	// /admin/deploy hot-swap endpoint the canary controller drives.
	Releases bool
	// ModelVersion pins the release version under Releases; canary pods are
	// pinned to the candidate while the baseline cohort stays on CURRENT.
	ModelVersion int
	// WatchReleases, when > 0 under Releases, makes each pod poll the store
	// at this interval and hot-swap onto newly promoted versions — fleet-wide
	// promotion without contacting pods individually.
	WatchReleases time.Duration
	// InstanceType labels the machine type for reporting ("cpu", ...).
	InstanceType string
	// Server configures the ETUDE runtime.
	Server server.Options
	// TorchServe configures the baseline runtime.
	TorchServe torchserve.Config
	// DrainTimeout bounds a pod's graceful shutdown: after BeginDrain and
	// removal from the rotation, in-flight requests get this long to finish
	// before the pod is force-closed (and the kill counted — see
	// Cluster.ForcedKills). Zero means DefaultDrainTimeout; negative means
	// no grace at all (immediate force-close).
	DrainTimeout time.Duration
	// Middleware optionally wraps each pod's handler, indexed by replica —
	// the pod-lifecycle hook fault injection (internal/chaos) uses to
	// impose crash windows. Nil leaves pods unwrapped. Replica ordinals are
	// never reused: a supervisor-restarted pod gets a fresh ordinal, so a
	// fault pinned to a crashed pod's ordinal does not follow its
	// replacement (a restarted pod is a new, healthy instance).
	Middleware func(replica int) func(http.Handler) http.Handler
}

func (s PodSpec) drainTimeout() time.Duration {
	switch {
	case s.DrainTimeout == 0:
		return DefaultDrainTimeout
	case s.DrainTimeout < 0:
		return 0
	default:
		return s.DrainTimeout
	}
}

// podHandle is the backend-specific lifecycle of one pod. The in-process
// backend implements it over an http.Server; the process backend implements
// it over the control-plane API (SIGTERM/SIGKILL against a real PID).
type podHandle interface {
	// beginDrain flips the runtime into its draining state: readiness 503,
	// admitted predictions still served.
	beginDrain()
	// stop shuts the pod down gracefully, waiting up to gracePeriod for
	// in-flight work; it reports whether the force path fired.
	stop(gracePeriod time.Duration) (forced bool)
	// forceStop kills the pod immediately, abandoning in-flight requests.
	forceStop()
	// signal delivers a POSIX signal by name ("KILL", "STOP", "CONT",
	// "TERM") to a real process; the in-process backend returns
	// ErrNoProcess.
	signal(sig string) error
	// coldStart reports how long the pod took from creation until it could
	// serve HTTP at all.
	coldStart() time.Duration
}

// startupReporter is an optional podHandle refinement for backends that
// measure both startup phases themselves on a single clock (the process
// runner's exec-anchored probes). Pod.WarmReady prefers it over the
// deployment readiness gate's stamp: the gate's poll is independent of the
// runner's and can observe readiness first, which would let a
// gate-clocked warm-ready undercut a runner-clocked cold start.
type startupReporter interface {
	warmReady() (time.Duration, bool)
}

// ErrNoProcess is returned by Pod.Signal on backends whose pods are not
// real operating-system processes.
var ErrNoProcess = fmt.Errorf("cluster: pod is not a real process")

// Pod is one running serving replica.
type Pod struct {
	addr    string
	handle  podHandle
	replica int
	// createdAt anchors the pod's startup-phase measurements; warmReady is
	// the creation → readiness-probe-passed duration, recorded by the
	// deployment's readiness gate.
	createdAt time.Time
	warmReady atomic.Int64
	draining  atomic.Bool
}

// Addr returns the pod's host:port.
func (p *Pod) Addr() string { return p.addr }

// URL returns the pod's base URL.
func (p *Pod) URL() string { return "http://" + p.addr }

// Replica returns the pod's ordinal within its deployment. Ordinals are
// assigned at creation and never reused.
func (p *Pod) Replica() int { return p.replica }

// Draining reports whether the pod has begun a graceful drain.
func (p *Pod) Draining() bool { return p.draining.Load() }

// ColdStart returns how long the pod took from creation until it could
// serve HTTP at all (for process pods: exec → first /live 200; for
// in-process pods this equals the model construction time, since the
// listener only exists once the model is built).
func (p *Pod) ColdStart() time.Duration { return p.handle.coldStart() }

// WarmReady returns how long the pod took from creation until its
// readiness probe passed (for process pods: exec → first /ping 200, i.e.
// cold start plus model load, measured on the same clock as ColdStart).
// Zero until the deployment's readiness gate has observed the pod ready.
func (p *Pod) WarmReady() time.Duration {
	if r, ok := p.handle.(startupReporter); ok {
		if d, ok := r.warmReady(); ok {
			return d
		}
	}
	return time.Duration(p.warmReady.Load())
}

// Signal delivers a POSIX signal by name ("KILL", "STOP", "CONT", "TERM")
// to the pod's operating-system process. Pods of the in-process backend
// return ErrNoProcess — fault injectors fall back to simulated faults
// there.
func (p *Pod) Signal(sig string) error { return p.handle.signal(sig) }

// beginDrain makes the pod fail its readiness probe while continuing to
// serve admitted (and racing) predictions — step one of the drain sequence.
func (p *Pod) beginDrain() {
	if p.draining.CompareAndSwap(false, true) {
		p.handle.beginDrain()
	}
}

// stop gracefully shuts the pod down: stop accepting connections, wait up
// to gracePeriod for in-flight requests, then force-close whatever is left.
// It reports whether the force path fired — a forced kill means work was
// cut off mid-flight and should be visible in reports, not silent.
func (p *Pod) stop(gracePeriod time.Duration) (forced bool) {
	return p.handle.stop(gracePeriod)
}

// forceStop kills the pod immediately, abandoning in-flight requests — the
// "no drain" path a careless operator takes, kept for the rolling
// experiment's control arm and for supervisors disposing of already-dead
// pods.
func (p *Pod) forceStop() { p.handle.forceStop() }

// inprocHandle runs a pod as an http.Server on a goroutine inside this
// process — the original, simulation-friendly backend.
type inprocHandle struct {
	http     *http.Server
	listener net.Listener
	closeFn  func()
	// drainFn flips the runtime into its draining state (readiness 503,
	// predictions still served); nil for runtimes without one, where the
	// HTTP server's connection-level graceful shutdown is the only drain.
	drainFn func()
	// built is the model-construction + listener-setup time — the
	// in-process stand-in for a cold start.
	built time.Duration
}

func (h *inprocHandle) beginDrain() {
	if h.drainFn != nil {
		h.drainFn()
	}
}

func (h *inprocHandle) stop(gracePeriod time.Duration) (forced bool) {
	if gracePeriod > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), gracePeriod)
		defer cancel()
		if err := h.http.Shutdown(ctx); err != nil {
			forced = true
			_ = h.http.Close()
		}
	} else {
		forced = true
		_ = h.http.Close()
	}
	if h.closeFn != nil {
		h.closeFn()
	}
	return forced
}

func (h *inprocHandle) forceStop() {
	_ = h.http.Close()
	if h.closeFn != nil {
		h.closeFn()
	}
}

func (h *inprocHandle) signal(string) error { return ErrNoProcess }

func (h *inprocHandle) coldStart() time.Duration { return h.built }

// podBackend is the substrate pods run on. The in-process backend hosts
// them as goroutine HTTP servers (fast, deterministic, fault injection by
// middleware); the process backend execs real etude-server binaries behind
// the local control plane (real crash-kill chaos, real cold starts).
type podBackend interface {
	// start launches one pod for spec with the given replica ordinal. The
	// pod is serving HTTP when start returns, but not necessarily ready.
	start(spec PodSpec, replica int) (*Pod, error)
	// name labels the backend in reports ("inproc", "proc").
	name() string
	// close releases backend-wide resources after the last pod stopped.
	close()
}

// Service is the ClusterIP analogue: it fans requests out to ready pods
// round-robin. Its pod set is dynamic — Scale, RollingUpdate and the
// supervisor change membership at runtime and push the new endpoint list to
// every balancer created from the service.
type Service struct {
	name    string
	cluster *Cluster
	rr      atomic.Uint64

	// opMu serialises fleet operations (scale, rolling update, supervised
	// restart) so two operators cannot interleave membership changes.
	opMu sync.Mutex

	mu          sync.Mutex
	spec        PodSpec
	pods        []*Pod
	balancers   []*Balancer
	nextOrdinal int
}

// Name returns the deployment name the service fronts.
func (s *Service) Name() string { return s.name }

// Pods returns a snapshot of the backing pods.
func (s *Service) Pods() []*Pod {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Pod(nil), s.pods...)
}

// Spec returns the pod spec the service currently deploys.
func (s *Service) Spec() PodSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spec
}

// SignalPod delivers a POSIX signal by name ("KILL", "STOP", "CONT",
// "TERM") to the pod with the given replica ordinal — the hook real-process
// chaos injection drives. A missing ordinal is not an error: faults pinned
// to a crashed pod's ordinal must not follow its replacement, so a signal
// aimed at a departed pod is silently dropped, matching the in-process
// middleware's semantics.
func (s *Service) SignalPod(replica int, sig string) error {
	for _, p := range s.Pods() {
		if p.Replica() == replica {
			return p.Signal(sig)
		}
	}
	return nil
}

// Endpoint returns the next non-draining pod URL round-robin (any pod URL
// if every pod is draining).
func (s *Service) Endpoint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pods) == 0 {
		return ""
	}
	start := s.rr.Add(1)
	for off := 0; off < len(s.pods); off++ {
		p := s.pods[int(start+uint64(off))%len(s.pods)]
		if !p.Draining() {
			return p.URL()
		}
	}
	return s.pods[int(start)%len(s.pods)].URL()
}

// Target adapts the service to the load generator: a health-aware balancer
// that starts as kube-proxy-style round robin but ejects pods whose circuit
// breaker opens (consecutive failures) and re-admits them once their
// readiness probe answers again. The balancer is released with the service.
func (s *Service) Target() loadgen.Target {
	return s.Balancer(BalancerConfig{})
}

// Balancer returns a health-aware balancer over the service's pods with
// explicit breaker tuning. The balancer tracks the service: scaling and
// rolling updates push endpoint changes into it. Its background probes stop
// when the service is deleted or the cluster torn down.
func (s *Service) Balancer(cfg BalancerConfig) *Balancer {
	s.mu.Lock()
	defer s.mu.Unlock()
	urls := make([]string, len(s.pods))
	for i, p := range s.pods {
		urls[i] = p.URL()
	}
	b := NewBalancer(urls, cfg)
	s.balancers = append(s.balancers, b)
	return b
}

func (s *Service) closeBalancers() {
	s.mu.Lock()
	balancers := s.balancers
	s.balancers = nil
	s.mu.Unlock()
	for _, b := range balancers {
		b.Close()
	}
}

// updateEndpointsLocked pushes the current pod URL list to every balancer.
// Callers hold s.mu.
func (s *Service) updateEndpointsLocked() {
	urls := make([]string, 0, len(s.pods))
	for _, p := range s.pods {
		if !p.Draining() {
			urls = append(urls, p.URL())
		}
	}
	for _, b := range s.balancers {
		b.Update(urls)
	}
}

// addPods appends ready pods to the rotation and publishes them to every
// balancer.
func (s *Service) addPods(pods []*Pod) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pods = append(s.pods, pods...)
	s.updateEndpointsLocked()
}

// removePods takes pods out of the service's membership and rotation
// without stopping them.
func (s *Service) removePods(victims []*Pod) {
	drop := make(map[*Pod]bool, len(victims))
	for _, p := range victims {
		drop[p] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.pods[:0]
	for _, p := range s.pods {
		if !drop[p] {
			kept = append(kept, p)
		}
	}
	s.pods = kept
	s.updateEndpointsLocked()
}

// drainPods executes the graceful removal sequence on each pod,
// concurrently: (1) fail the readiness probe, (2) leave the rotation so
// balancers stop picking the pod, (3) wait up to the spec's DrainTimeout
// for in-flight requests, (4) force-close the rest and count the kill.
// Concurrency matters: draining N pods serially would make teardown
// O(N·DrainTimeout) worst-case.
func (s *Service) drainPods(victims []*Pod, gracePeriod time.Duration) {
	if len(victims) == 0 {
		return
	}
	for _, p := range victims {
		p.beginDrain()
	}
	s.removePods(victims)
	if gracePeriod > 0 {
		// Let picks that raced the endpoint update reach the pods before
		// their listeners close.
		time.Sleep(drainSettle)
	}
	var wg sync.WaitGroup
	for _, p := range victims {
		wg.Add(1)
		go func(p *Pod) {
			defer wg.Done()
			if p.stop(gracePeriod) {
				s.cluster.forcedKills.Add(1)
				logEvent().Warn("drain deadline expired, pod force-killed",
					"deployment", s.name, "replica", p.Replica(), "grace", gracePeriod)
			}
		}(p)
	}
	wg.Wait()
}

// Cluster manages deployments. Create with New (the `make infra` analogue)
// for in-process pods or NewProc for real-process pods, deploy with Deploy,
// and release all resources with Teardown.
type Cluster struct {
	bucket  objstore.Bucket
	backend podBackend

	// forcedKills counts pods whose drain deadline expired and were
	// force-closed with requests still in flight.
	forcedKills atomic.Int64

	mu       sync.Mutex
	services map[string]*Service
}

// New provisions a cluster backed by the given artifact bucket, hosting
// pods in-process.
func New(bucket objstore.Bucket) *Cluster {
	c := &Cluster{bucket: bucket, services: make(map[string]*Service)}
	c.backend = &inprocBackend{c: c}
	return c
}

// Bucket returns the cluster's artifact/results bucket.
func (c *Cluster) Bucket() objstore.Bucket { return c.bucket }

// Backend reports which pod substrate the cluster runs on ("inproc" or
// "proc").
func (c *Cluster) Backend() string { return c.backend.name() }

// ForcedKills returns how many pods were force-closed because their drain
// deadline expired with work still in flight. Zero across a rolling update
// is the "no request was harmed" signal.
func (c *Cluster) ForcedKills() int64 { return c.forcedKills.Load() }

// Deploy starts `replicas` pods for spec under `name`, waits for every
// pod's readiness probe, and returns the fronting service. Deploying an
// existing name is an error (delete it first).
func (c *Cluster) Deploy(ctx context.Context, name string, spec PodSpec, replicas int) (*Service, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: deployment %q needs at least one replica", name)
	}
	c.mu.Lock()
	if _, exists := c.services[name]; exists {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: deployment %q already exists", name)
	}
	c.mu.Unlock()

	svc := &Service{name: name, cluster: c, spec: spec, nextOrdinal: replicas}
	for i := 0; i < replicas; i++ {
		pod, err := c.backend.start(spec, i)
		if err != nil {
			for _, p := range svc.pods {
				p.forceStop()
			}
			return nil, fmt.Errorf("cluster: starting replica %d of %q: %w", i, name, err)
		}
		svc.pods = append(svc.pods, pod)
	}
	// Readiness gate: the service only exists once every pod answers its
	// probe, like a Kubernetes rollout.
	for _, pod := range svc.pods {
		if err := waitPodReady(ctx, pod); err != nil {
			for _, p := range svc.pods {
				p.forceStop()
			}
			return nil, fmt.Errorf("cluster: readiness probe for %q: %w", name, err)
		}
	}
	c.mu.Lock()
	c.services[name] = svc
	c.mu.Unlock()
	return svc, nil
}

// inprocBackend hosts pods as goroutine HTTP servers inside this process.
type inprocBackend struct {
	c *Cluster
}

func (b *inprocBackend) name() string { return "inproc" }
func (b *inprocBackend) close()       {}

func (b *inprocBackend) start(spec PodSpec, replica int) (*Pod, error) {
	started := time.Now()
	var handler http.Handler
	var closeFn, drainFn func()
	switch spec.Runtime {
	case RuntimeEtude:
		var srv *server.Server
		var err error
		if spec.Releases {
			srv, err = server.LoadFromReleases(deploy.NewStore(b.c.bucket), spec.ModelVersion, spec.WatchReleases, spec.Server)
		} else {
			srv, err = server.LoadFromBucket(b.c.bucket, spec.ModelKey, spec.Server)
		}
		if err != nil {
			return nil, err
		}
		handler, closeFn, drainFn = srv.Handler(), srv.Close, srv.BeginDrain
	case RuntimeEtudeStatic:
		srv := server.NewStatic()
		handler, closeFn, drainFn = srv.Handler(), srv.Close, srv.BeginDrain
	case RuntimeTorchServe:
		ts := torchserve.New(nil, spec.TorchServe)
		handler, closeFn = ts.Handler(), ts.Close
	default:
		return nil, fmt.Errorf("cluster: unknown runtime %d", spec.Runtime)
	}

	if spec.Middleware != nil {
		if wrap := spec.Middleware(replica); wrap != nil {
			handler = wrap(handler)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if closeFn != nil {
			closeFn()
		}
		return nil, fmt.Errorf("cluster: allocating pod port: %w", err)
	}
	handle := &inprocHandle{
		http:     &http.Server{Handler: handler},
		listener: ln,
		closeFn:  closeFn,
		drainFn:  drainFn,
		built:    time.Since(started),
	}
	pod := &Pod{
		addr:      ln.Addr().String(),
		handle:    handle,
		replica:   replica,
		createdAt: started,
	}
	go func() {
		// ErrServerClosed is the normal shutdown path.
		_ = handle.http.Serve(ln)
	}()
	return pod, nil
}

// waitPodReady gates on the pod's readiness probe and records its
// warm-ready timing (creation → first /ping 200) on success.
func waitPodReady(ctx context.Context, pod *Pod) error {
	if err := waitProbe(ctx, pod.URL()+httpapi.ReadyPath); err != nil {
		return err
	}
	if pod.warmReady.Load() == 0 {
		pod.warmReady.Store(int64(time.Since(pod.createdAt)))
	}
	return nil
}

func waitProbe(ctx context.Context, probeURL string) error {
	client := &http.Client{Timeout: time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, probeURL, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Service returns a deployed service by name.
func (c *Cluster) Service(name string) (*Service, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	svc, ok := c.services[name]
	return svc, ok
}

// Delete gracefully drains a deployment's pods (concurrently) and removes
// its service.
func (c *Cluster) Delete(name string) error {
	c.mu.Lock()
	svc, ok := c.services[name]
	delete(c.services, name)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no deployment %q", name)
	}
	svc.opMu.Lock()
	defer svc.opMu.Unlock()
	grace := svc.Spec().drainTimeout()
	svc.drainPods(svc.Pods(), grace)
	svc.closeBalancers()
	return nil
}

// Teardown gracefully drains every deployment, all pods concurrently.
func (c *Cluster) Teardown() {
	c.mu.Lock()
	services := c.services
	c.services = make(map[string]*Service)
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, svc := range services {
		wg.Add(1)
		go func(svc *Service) {
			defer wg.Done()
			svc.opMu.Lock()
			defer svc.opMu.Unlock()
			svc.drainPods(svc.Pods(), svc.Spec().drainTimeout())
			svc.closeBalancers()
		}(svc)
	}
	wg.Wait()
	c.backend.close()
}
