// Package cluster is the Kubernetes stand-in of this reproduction: it
// deploys inference servers as in-process "pods" listening on real local
// ports, gates them behind readiness probes (the paper: "once the model
// deployment is finished — determined via Kubernetes's readiness probes —
// a ClusterIP service interface is deployed"), and exposes a round-robin
// ClusterIP-style service that the load generator targets.
//
// Pods host either ETUDE's own inference server (internal/server) or the
// TorchServe baseline (internal/torchserve); model artifacts are pulled
// from an object-store bucket, mirroring the paper's deployment flow.
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/httpapi"
	"etude/internal/loadgen"
	"etude/internal/objstore"
	"etude/internal/server"
	"etude/internal/torchserve"
)

// Runtime selects which serving engine a pod runs.
type Runtime int

const (
	// RuntimeEtude runs the internal/server inference server.
	RuntimeEtude Runtime = iota
	// RuntimeEtudeStatic runs the static (no-model) ETUDE server.
	RuntimeEtudeStatic
	// RuntimeTorchServe runs the TorchServe baseline simulator.
	RuntimeTorchServe
)

// PodSpec declares what one pod runs.
type PodSpec struct {
	// Runtime selects the serving engine.
	Runtime Runtime
	// ModelKey locates the model manifest in the cluster's bucket (ignored
	// by the static runtime; optional for TorchServe).
	ModelKey string
	// InstanceType labels the machine type for reporting ("cpu", ...).
	InstanceType string
	// Server configures the ETUDE runtime.
	Server server.Options
	// TorchServe configures the baseline runtime.
	TorchServe torchserve.Config
	// Middleware optionally wraps each pod's handler, indexed by replica —
	// the pod-lifecycle hook fault injection (internal/chaos) uses to
	// impose crash windows. Nil leaves pods unwrapped.
	Middleware func(replica int) func(http.Handler) http.Handler
}

// Pod is one running serving replica.
type Pod struct {
	addr     string
	http     *http.Server
	listener net.Listener
	closeFn  func()
}

// Addr returns the pod's host:port.
func (p *Pod) Addr() string { return p.addr }

// URL returns the pod's base URL.
func (p *Pod) URL() string { return "http://" + p.addr }

func (p *Pod) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = p.http.Shutdown(ctx)
	if p.closeFn != nil {
		p.closeFn()
	}
}

// Service is the ClusterIP analogue: it fans requests out to ready pods
// round-robin.
type Service struct {
	name string
	pods []*Pod
	rr   atomic.Uint64

	mu        sync.Mutex
	balancers []*Balancer
}

// Name returns the deployment name the service fronts.
func (s *Service) Name() string { return s.name }

// Pods returns the backing pods.
func (s *Service) Pods() []*Pod { return s.pods }

// Endpoint returns the next pod URL round-robin.
func (s *Service) Endpoint() string {
	i := s.rr.Add(1)
	return s.pods[int(i)%len(s.pods)].URL()
}

// Target adapts the service to the load generator: a health-aware balancer
// that starts as kube-proxy-style round robin but ejects pods whose circuit
// breaker opens (consecutive failures) and re-admits them once their
// readiness probe answers again. The balancer is released with the service.
func (s *Service) Target() loadgen.Target {
	return s.Balancer(BalancerConfig{})
}

// Balancer returns a health-aware balancer over the service's pods with
// explicit breaker tuning. Its background probes stop when the service is
// deleted or the cluster torn down.
func (s *Service) Balancer(cfg BalancerConfig) *Balancer {
	urls := make([]string, len(s.pods))
	for i, p := range s.pods {
		urls[i] = p.URL()
	}
	b := NewBalancer(urls, cfg)
	s.mu.Lock()
	s.balancers = append(s.balancers, b)
	s.mu.Unlock()
	return b
}

func (s *Service) closeBalancers() {
	s.mu.Lock()
	balancers := s.balancers
	s.balancers = nil
	s.mu.Unlock()
	for _, b := range balancers {
		b.Close()
	}
}

// Cluster manages deployments. Create with New (the `make infra` analogue),
// deploy with Deploy, and release all resources with Teardown.
type Cluster struct {
	bucket objstore.Bucket

	mu       sync.Mutex
	services map[string]*Service
}

// New provisions a cluster backed by the given artifact bucket.
func New(bucket objstore.Bucket) *Cluster {
	return &Cluster{bucket: bucket, services: make(map[string]*Service)}
}

// Bucket returns the cluster's artifact/results bucket.
func (c *Cluster) Bucket() objstore.Bucket { return c.bucket }

// Deploy starts `replicas` pods for spec under `name`, waits for every
// pod's readiness probe, and returns the fronting service. Deploying an
// existing name is an error (delete it first).
func (c *Cluster) Deploy(ctx context.Context, name string, spec PodSpec, replicas int) (*Service, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: deployment %q needs at least one replica", name)
	}
	c.mu.Lock()
	if _, exists := c.services[name]; exists {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: deployment %q already exists", name)
	}
	c.mu.Unlock()

	svc := &Service{name: name}
	for i := 0; i < replicas; i++ {
		pod, err := c.startPod(spec, i)
		if err != nil {
			for _, p := range svc.pods {
				p.stop()
			}
			return nil, fmt.Errorf("cluster: starting replica %d of %q: %w", i, name, err)
		}
		svc.pods = append(svc.pods, pod)
	}
	// Readiness gate: the service only exists once every pod answers its
	// probe, like a Kubernetes rollout.
	for _, pod := range svc.pods {
		if err := waitReady(ctx, pod.URL()); err != nil {
			for _, p := range svc.pods {
				p.stop()
			}
			return nil, fmt.Errorf("cluster: readiness probe for %q: %w", name, err)
		}
	}
	c.mu.Lock()
	c.services[name] = svc
	c.mu.Unlock()
	return svc, nil
}

func (c *Cluster) startPod(spec PodSpec, replica int) (*Pod, error) {
	var handler http.Handler
	var closeFn func()
	switch spec.Runtime {
	case RuntimeEtude:
		srv, err := server.LoadFromBucket(c.bucket, spec.ModelKey, spec.Server)
		if err != nil {
			return nil, err
		}
		handler, closeFn = srv.Handler(), srv.Close
	case RuntimeEtudeStatic:
		srv := server.NewStatic()
		handler, closeFn = srv.Handler(), srv.Close
	case RuntimeTorchServe:
		ts := torchserve.New(nil, spec.TorchServe)
		handler, closeFn = ts.Handler(), ts.Close
	default:
		return nil, fmt.Errorf("cluster: unknown runtime %d", spec.Runtime)
	}

	if spec.Middleware != nil {
		if wrap := spec.Middleware(replica); wrap != nil {
			handler = wrap(handler)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if closeFn != nil {
			closeFn()
		}
		return nil, fmt.Errorf("cluster: allocating pod port: %w", err)
	}
	pod := &Pod{
		addr:     ln.Addr().String(),
		http:     &http.Server{Handler: handler},
		listener: ln,
		closeFn:  closeFn,
	}
	go func() {
		// ErrServerClosed is the normal shutdown path.
		_ = pod.http.Serve(ln)
	}()
	return pod, nil
}

func waitReady(ctx context.Context, url string) error {
	client := &http.Client{Timeout: time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+httpapi.ReadyPath, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Service returns a deployed service by name.
func (c *Cluster) Service(name string) (*Service, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	svc, ok := c.services[name]
	return svc, ok
}

// Delete stops a deployment's pods and removes its service.
func (c *Cluster) Delete(name string) error {
	c.mu.Lock()
	svc, ok := c.services[name]
	delete(c.services, name)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no deployment %q", name)
	}
	svc.closeBalancers()
	for _, p := range svc.pods {
		p.stop()
	}
	return nil
}

// Teardown stops every deployment.
func (c *Cluster) Teardown() {
	c.mu.Lock()
	services := c.services
	c.services = make(map[string]*Service)
	c.mu.Unlock()
	for _, svc := range services {
		svc.closeBalancers()
		for _, p := range svc.pods {
			p.stop()
		}
	}
}
