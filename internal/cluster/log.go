package cluster

import (
	"io"
	"log/slog"
	"sync/atomic"
)

// The cluster emits structured diagnostics — supervisor restarts, drain
// force-kills, circuit-breaker transitions — through one package-level
// leveled logger. It discards everything by default so tests and benchmarks
// stay quiet; the -v CLI flag routes it to stderr as key=value lines.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(discardLogger())
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// SetLogger routes the cluster's diagnostic events to l. A nil l restores
// the default discarding logger. Safe to call concurrently with running
// supervisors and balancers.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = discardLogger()
	}
	logger.Store(l)
}

// NewTextLogger returns a key=value logger writing to w at Info level — the
// logger the CLI installs under -v.
func NewTextLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo}))
}

// logEvent returns the current diagnostics logger.
func logEvent() *slog.Logger { return logger.Load() }
