//go:build linux

package cluster

import (
	"os/exec"
	"syscall"
)

// setPdeathsig makes the kernel SIGKILL the child if the runner process
// dies — the last-resort orphan guard when the benchmark harness itself
// crashes without running Reap.
func setPdeathsig(cmd *exec.Cmd) {
	if cmd.SysProcAttr == nil {
		cmd.SysProcAttr = &syscall.SysProcAttr{}
	}
	cmd.SysProcAttr.Pdeathsig = syscall.SIGKILL
}
