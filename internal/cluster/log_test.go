package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/metrics"
)

// syncBuffer serialises writes: slog handlers may be called from the
// balancer's request path and its re-admission probe concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDiagnosticsLogged: with a logger installed, breaker transitions come
// out as key=value lines; with the default logger, nothing is emitted.
func TestDiagnosticsLogged(t *testing.T) {
	pod := &flakyPod{}
	pod.down.Store(true)
	srv := httptest.NewServer(pod.handler())
	defer srv.Close()

	var buf syncBuffer
	SetLogger(NewTextLogger(&buf))
	defer SetLogger(nil)

	b := NewBalancer([]string{srv.URL}, BalancerConfig{
		FailThreshold: 2,
		ProbeInterval: 5 * time.Millisecond,
	})
	defer b.Close()

	req := httpapi.PredictRequest{Items: []int64{1}}
	for i := 0; i < 2; i++ {
		b.Predict(context.Background(), req)
	}
	if got := buf.String(); !strings.Contains(got, "circuit breaker opened") ||
		!strings.Contains(got, "endpoint="+srv.URL) {
		t.Fatalf("breaker trip not logged:\n%s", got)
	}

	// Recovery closes the breaker and logs it.
	pod.down.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for b.Ejected() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "circuit breaker closed") {
		t.Fatalf("breaker close not logged:\n%s", buf.String())
	}
}

// TestQuietByDefault: with no logger installed the same transitions emit
// nothing (the discard handler) — benchmarks and tests stay clean.
func TestQuietByDefault(t *testing.T) {
	SetLogger(nil)
	pod := &flakyPod{}
	pod.down.Store(true)
	srv := httptest.NewServer(pod.handler())
	defer srv.Close()
	b := NewBalancer([]string{srv.URL}, BalancerConfig{FailThreshold: 1, ProbeInterval: time.Hour})
	defer b.Close()
	b.Predict(context.Background(), httpapi.PredictRequest{Items: []int64{1}})
	if b.Ejected() != 1 {
		t.Fatal("breaker did not trip")
	}
	// Nothing observable: the discard logger has no buffer to inspect; the
	// assertion is simply that no panic or output side effects occur.
}

// TestBalancerWriteMetrics: breaker state comes out as parseable Prometheus
// gauges.
func TestBalancerWriteMetrics(t *testing.T) {
	pod := &flakyPod{}
	pod.down.Store(true)
	srv := httptest.NewServer(pod.handler())
	defer srv.Close()
	b := NewBalancer([]string{srv.URL}, BalancerConfig{FailThreshold: 1, ProbeInterval: time.Hour})
	defer b.Close()
	b.Predict(context.Background(), httpapi.PredictRequest{Items: []int64{1}})

	pb := metrics.NewPromBuilder()
	b.WriteMetrics(pb)
	samples, err := metrics.ParsePromText(strings.NewReader(pb.String()))
	if err != nil {
		t.Fatalf("breaker metrics not parseable: %v\n%s", err, pb.String())
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Name] = s.Value
	}
	if got["etude_breaker_open"] != 1 || got["etude_breaker_ejected"] != 1 {
		t.Fatalf("breaker gauges = %v, want open=1 ejected=1\n%s", got, pb.String())
	}
}
