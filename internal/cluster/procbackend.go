package cluster

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"etude/internal/objstore"
)

// This file adapts the control plane to the cluster's podBackend interface:
// a Cluster created with NewProc runs every pod as a real etude-server
// process, yet Deploy/Scale/RollingUpdate/Supervise and the balancer work
// unchanged — they only ever see Pod handles and HTTP endpoints. The
// difference is what the handles do: beginDrain delivers SIGTERM, forceStop
// delivers SIGKILL, and cold-start numbers come from a real exec.

// dirBucket is the part of an object-store bucket a separate process can
// reach: a filesystem directory. objstore.FSBucket implements it.
type dirBucket interface {
	objstore.Bucket
	Dir() string
}

// NewProc provisions a cluster whose pods are real etude-server processes
// supervised by a local control plane. The bucket must be filesystem-backed
// (objstore.FSBucket) — child processes read model artifacts through the
// -bucket flag, and an in-memory bucket has no path to hand them. serverBin
// is the etude-server binary (see ServerBinary for the test-time builder).
func NewProc(bucket objstore.Bucket, serverBin string) (*Cluster, error) {
	db, ok := bucket.(dirBucket)
	if !ok {
		return nil, fmt.Errorf("cluster: process pods need a filesystem bucket (objstore.FSBucket), got %T", bucket)
	}
	if serverBin == "" {
		return nil, fmt.Errorf("cluster: process pods need an etude-server binary path")
	}
	cp, err := StartControlPlane(serverBin)
	if err != nil {
		return nil, err
	}
	c := &Cluster{bucket: bucket, services: make(map[string]*Service)}
	c.backend = &procBackend{
		cp:        cp,
		client:    cp.Client(),
		bucketDir: db.Dir(),
	}
	return c, nil
}

// ControlPlane returns the cluster's control-plane daemon when the cluster
// runs on the process backend, or nil on the in-process backend — the hook
// experiments use to scrape fleet metrics and spawn out-of-band pods.
func (c *Cluster) ControlPlane() *ControlPlane {
	if pb, ok := c.backend.(*procBackend); ok {
		return pb.cp
	}
	return nil
}

type procBackend struct {
	cp        *ControlPlane
	client    *ControlPlaneClient
	bucketDir string
}

func (b *procBackend) name() string { return "proc" }
func (b *procBackend) close()       { b.cp.Close() }

func (b *procBackend) start(spec PodSpec, replica int) (*Pod, error) {
	args, err := procArgs(spec, b.bucketDir)
	if err != nil {
		return nil, err
	}
	// Restart stays off: the cluster Supervisor owns recovery (liveness
	// probes + startReadyPods), and two repair loops on one pod would
	// double-restart.
	st, err := b.client.Spawn(ProcSpec{Args: args})
	if err != nil {
		return nil, err
	}
	return &Pod{
		addr:      st.Addr,
		handle:    &procHandle{client: b.client, id: st.ID},
		replica:   replica,
		createdAt: time.Now(),
	}, nil
}

// procArgs maps a PodSpec onto etude-server command-line flags — the
// process backend's equivalent of inprocBackend.start building a
// server.Server from Options. Options that cannot cross a process boundary
// are rejected, not silently dropped, with one deliberate exception:
// Middleware is an in-process fault hook (it wraps an http.Handler), so the
// process backend ignores it — real-process faults are injected as signals
// through chaos.ProcDriver instead.
func procArgs(spec PodSpec, bucketDir string) ([]string, error) {
	var args []string
	switch spec.Runtime {
	case RuntimeEtude:
		switch {
		case spec.Releases:
			args = append(args, "-bucket", bucketDir, "-releases")
			if spec.ModelVersion > 0 {
				args = append(args, "-model-version", strconv.Itoa(spec.ModelVersion))
			}
			if spec.WatchReleases > 0 {
				args = append(args, "-watch-releases", spec.WatchReleases.String())
			}
		case spec.ModelKey == "":
			return nil, fmt.Errorf("cluster: process pod needs a model key")
		default:
			args = append(args, "-bucket", bucketDir, "-key", spec.ModelKey)
		}
	case RuntimeEtudeStatic:
		args = append(args, "-static")
	case RuntimeTorchServe:
		return nil, fmt.Errorf("cluster: the TorchServe simulator has no standalone binary; use the in-process backend")
	default:
		return nil, fmt.Errorf("cluster: unknown runtime %d", spec.Runtime)
	}

	o := spec.Server
	// The flag defaults to true, the Options zero value to false — always
	// pass it so both backends serve the same plan.
	args = append(args, "-jit="+strconv.FormatBool(o.JIT))
	if o.Workers > 0 {
		args = append(args, "-workers", strconv.Itoa(o.Workers))
	}
	if o.Batch != nil {
		args = append(args, "-batch")
	}
	if o.Limiter != nil {
		args = append(args, "-adaptive")
	}
	if o.MaxPending != 0 {
		args = append(args, "-max-pending", strconv.Itoa(o.MaxPending))
	}
	if o.DegradeAt > 0 {
		args = append(args, "-degrade-at", strconv.Itoa(o.DegradeAt))
	}
	if o.Shards > 1 {
		args = append(args, "-shards", strconv.Itoa(o.Shards))
	}
	if o.Partition != nil {
		args = append(args, "-partition", fmt.Sprintf("%d:%d:%d",
			o.Partition.Index, o.Partition.From, o.Partition.To))
	}
	if o.Tracer != nil {
		args = append(args, "-trace")
	}
	if o.Profiling {
		args = append(args, "-pprof")
	}
	// Live objects cannot be handed to another process; their flag-side
	// equivalents cover the experiments, but a pre-built instance with
	// custom tuning would silently lose it — refuse instead.
	if o.CoDel != nil && o.Limiter == nil {
		return nil, fmt.Errorf("cluster: process pods cannot adopt a pre-built CoDel instance; set Limiter (maps to -adaptive) or run in-process")
	}
	if o.MetricsExtra != nil {
		return nil, fmt.Errorf("cluster: process pods cannot serve MetricsExtra callbacks; scrape the control plane's /metrics instead")
	}
	if o.Gateway != nil {
		return nil, fmt.Errorf("cluster: process pods cannot adopt a pre-built shard.Gateway; pass replica URLs via the -gateway flag instead")
	}

	// The server owns its drain bound: SIGTERM → finish in-flight within
	// -drain-timeout → exit, self-force-closing (exit 1) past the deadline.
	args = append(args, "-drain-timeout", spec.drainTimeout().String())
	return args, nil
}

// procHandle drives one real process pod through the control-plane client.
type procHandle struct {
	client *ControlPlaneClient
	id     int

	// drainSent dedupes the SIGTERM: beginDrain and stop may both run (the
	// drain sequence), and the server treats a second SIGTERM as "exit
	// now" — exactly what a graceful drain must not do.
	drainSent bool
	// cold/warm cache the measured startup phases once the control plane
	// reports non-zero values (atomic: report writers race fleet
	// operations).
	cold atomic.Int64
	warm atomic.Int64
}

func (h *procHandle) beginDrain() {
	h.drainSent = true
	if err := h.client.Drain(h.id, 0); err != nil {
		logEvent().Warn("drain signal failed", "pod", h.id, "err", err)
	}
}

// stop waits out the graceful shutdown the SIGTERM started: the server
// itself enforces -drain-timeout, so a healthy pod exits 0 well within
// gracePeriod and a wedged one self-force-closes with exit 1. The handle
// adds a SIGKILL backstop slightly past the grace bound for processes too
// broken to run their own signal handler.
func (h *procHandle) stop(gracePeriod time.Duration) (forced bool) {
	if gracePeriod <= 0 {
		h.forceStop()
		return true
	}
	if !h.drainSent {
		h.beginDrain()
	}
	// The server's own deadline is gracePeriod (procArgs passed it as
	// -drain-timeout); give it headroom to fire before the backstop.
	st, exited := h.client.WaitExit(h.id, gracePeriod+time.Second)
	if !exited {
		_ = h.client.Kill(h.id)
		st, _ = h.client.WaitExit(h.id, 5*time.Second)
		return true
	}
	// A non-zero exit on a drained pod is the server reporting it had to
	// cut work off at its deadline.
	return st.Forced || st.ExitCode != 0
}

func (h *procHandle) forceStop() {
	if err := h.client.Kill(h.id); err != nil {
		logEvent().Warn("kill failed", "pod", h.id, "err", err)
		return
	}
	h.client.WaitExit(h.id, 5*time.Second)
}

func (h *procHandle) signal(sig string) error {
	return h.client.Signal(h.id, sig)
}

func (h *procHandle) coldStart() time.Duration {
	return h.startupPhase(&h.cold, func(st ProcStatus) time.Duration { return st.ColdStart })
}

// warmReady reports the runner-measured exec → /ping duration, satisfying
// the startupReporter refinement: both startup phases then come from the
// same exec-anchored clock, so warm ≥ cold holds by construction.
func (h *procHandle) warmReady() (time.Duration, bool) {
	d := h.startupPhase(&h.warm, func(st ProcStatus) time.Duration { return st.WarmReady })
	return d, d != 0
}

// startupPhase fetches one startup measurement from the control plane,
// caching it once recorded. The runner's own probe loop can trail the
// cluster's readiness gate by a probe interval, so a just-ready pod may
// not have the phase recorded yet — wait it out briefly rather than
// report a misleading zero. Gives up immediately once the pod is gone.
func (h *procHandle) startupPhase(cached *atomic.Int64, get func(ProcStatus) time.Duration) time.Duration {
	if v := cached.Load(); v != 0 {
		return time.Duration(v)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		st, err := h.client.Status(h.id)
		if err != nil {
			return 0
		}
		if d := get(st); d != 0 {
			cached.Store(int64(d))
			return d
		}
		if st.State == ProcExited || time.Now().After(deadline) {
			return 0
		}
		time.Sleep(5 * time.Millisecond)
	}
}
