package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/objstore"
)

// flakyPod is a stand-in backend whose health is flipped by the test:
// while down, predictions and readiness probes both answer 503.
type flakyPod struct {
	down atomic.Bool
	hits atomic.Int64
}

func (p *flakyPod) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(httpapi.ReadyPath, func(w http.ResponseWriter, r *http.Request) {
		if p.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc(httpapi.PredictPath, func(w http.ResponseWriter, r *http.Request) {
		if p.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		p.hits.Add(1)
		httpapi.WriteJSON(w, http.StatusOK, httpapi.PredictResponse{})
	})
	return mux
}

func TestBalancerEjectsAndReadmits(t *testing.T) {
	good, bad := &flakyPod{}, &flakyPod{}
	bad.down.Store(true)
	goodSrv := httptest.NewServer(good.handler())
	defer goodSrv.Close()
	badSrv := httptest.NewServer(bad.handler())
	defer badSrv.Close()

	b := NewBalancer([]string{goodSrv.URL, badSrv.URL}, BalancerConfig{
		FailThreshold: 2,
		ProbeInterval: 10 * time.Millisecond,
	})
	defer b.Close()

	req := httpapi.PredictRequest{Items: []int64{1}}
	ctx := context.Background()

	// Drive requests until the bad pod's breaker opens; after that every
	// request must land on the healthy pod.
	for i := 0; i < 10; i++ {
		_, _ = b.PredictMeta(ctx, req)
	}
	if b.Ejected() != 1 {
		t.Fatalf("ejected = %d, want 1", b.Ejected())
	}
	before := good.hits.Load()
	for i := 0; i < 6; i++ {
		if _, err := b.PredictMeta(ctx, req); err != nil {
			t.Fatalf("request with one ejected pod failed: %v", err)
		}
	}
	if got := good.hits.Load() - before; got != 6 {
		t.Fatalf("healthy pod served %d of 6 requests", got)
	}

	// Recovery: once the pod answers its readiness probe it rejoins.
	bad.down.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for b.Ejected() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovered pod never re-admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And receives traffic again within one rotation.
	before = bad.hits.Load()
	for i := 0; i < 4; i++ {
		if _, err := b.PredictMeta(ctx, req); err != nil {
			t.Fatalf("request after re-admission failed: %v", err)
		}
	}
	if bad.hits.Load() == before {
		t.Fatal("re-admitted pod received no traffic")
	}
}

func TestBalancerAllEjectedRefusesFast(t *testing.T) {
	bad := &flakyPod{}
	bad.down.Store(true)
	srv := httptest.NewServer(bad.handler())
	defer srv.Close()

	b := NewBalancer([]string{srv.URL}, BalancerConfig{FailThreshold: 1, ProbeInterval: time.Hour})
	defer b.Close()

	req := httpapi.PredictRequest{Items: []int64{1}}
	_, _ = b.PredictMeta(context.Background(), req)
	meta, err := b.PredictMeta(context.Background(), req)
	se, ok := err.(*httpapi.StatusError)
	if !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 StatusError with every pod ejected, got %v", err)
	}
	if meta.Status != http.StatusServiceUnavailable {
		t.Fatalf("meta.Status = %d", meta.Status)
	}
}

// TestPodMiddleware verifies the PodSpec.Middleware hook wraps pod handlers
// — the seam live-mode fault injection plugs into.
func TestPodMiddleware(t *testing.T) {
	c := New(objstore.NewMemBucket())
	defer c.Teardown()

	var wrapped atomic.Int64
	spec := PodSpec{
		Runtime: RuntimeEtudeStatic,
		Middleware: func(replica int) func(http.Handler) http.Handler {
			return func(next http.Handler) http.Handler {
				return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					wrapped.Add(1)
					next.ServeHTTP(w, r)
				})
			}
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	svc, err := c.Deploy(ctx, "mw", spec, 1)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if err := svc.Target().Predict(ctx, httpapi.PredictRequest{Items: []int64{1}}); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	// The middleware saw at least the readiness probes plus the prediction.
	if wrapped.Load() < 2 {
		t.Fatalf("middleware invoked %d times", wrapped.Load())
	}
}
