package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"etude/internal/deploy"
	"etude/internal/httpapi"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/server"
)

// publishRelease stages one gru4rec release with the given catalog size and
// seed. Catalog size is the latency knob: MIPS scoring is O(C), so a
// release with a much larger catalog is organically slower — no artificial
// sleeps needed to regress the canary.
func publishRelease(t *testing.T, store *deploy.Store, catalog int, seed int64) int {
	t.Helper()
	cfg := model.Config{CatalogSize: catalog, Seed: seed}
	m, err := model.New("gru4rec", cfg)
	if err != nil {
		t.Fatal(err)
	}
	weights, err := model.SaveWeights(m)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := store.Publish(model.Manifest{Model: "gru4rec", Config: cfg}, weights, "")
	if err != nil {
		t.Fatal(err)
	}
	return rel.Version
}

// canaryFixture deploys a release-backed service: v1 promoted, three pods
// serving CURRENT. Returns the store, the service and a load-stopper that
// keeps traffic flowing to every pod until the test ends.
func canaryFixture(t *testing.T) (*deploy.Store, *Service) {
	t.Helper()
	bucket := objstore.NewMemBucket()
	store := deploy.NewStore(bucket)
	v1 := publishRelease(t, store, 200, 1)
	if err := store.Promote(v1); err != nil {
		t.Fatal(err)
	}
	c := New(bucket)
	t.Cleanup(c.Teardown)
	svc, err := c.Deploy(context.Background(), "rec", PodSpec{
		Runtime:  RuntimeEtude,
		Releases: true,
		Server:   server.Options{Workers: 2},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1, 2, 3}})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(svc.Endpoint()+httpapi.PredictPath, "application/json", bytes.NewReader(body))
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	t.Cleanup(func() { close(stop); wg.Wait() })
	return store, svc
}

func canaryCfg() CanaryConfig {
	return CanaryConfig{
		CanaryPods: 1,
		Observe:    50 * time.Millisecond,
		Timeout:    15 * time.Second,
		Thresholds: deploy.Thresholds{MinSamples: 10},
	}
}

func TestCanaryPromotesGoodRelease(t *testing.T) {
	store, svc := canaryFixture(t)
	v2 := publishRelease(t, store, 200, 2)

	cc := NewCanaryController(store)
	out, err := cc.Rollout(context.Background(), svc, v2, canaryCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Promoted || out.RolledBack || out.Quarantined {
		t.Fatalf("good release outcome = %+v, want promoted", out)
	}
	cur, err := store.Current()
	if err != nil || cur.Version != v2 {
		t.Fatalf("CURRENT after promote = %+v, %v, want v%d", cur, err, v2)
	}
	if cc.Promotions() != 1 || cc.Rollbacks() != 0 {
		t.Fatalf("counters promotions=%d rollbacks=%d", cc.Promotions(), cc.Rollbacks())
	}
	// Every pod converges onto v2 (the controller re-pins the baseline
	// cohort directly after moving CURRENT).
	for _, p := range svc.Pods() {
		v, err := scrapeModelVersion(p.URL())
		if err != nil || v != v2 {
			t.Fatalf("replica %d serves v%d (%v), want v%d", p.Replica(), v, err, v2)
		}
	}
}

func TestCanaryRollsBackLatencyRegression(t *testing.T) {
	store, svc := canaryFixture(t)
	// 100x the catalog: O(C) MIPS scoring makes the candidate organically,
	// massively slower than the baseline — the paper's core scaling result
	// used as a rollback trigger.
	vBad := publishRelease(t, store, 20000, 3)

	cc := NewCanaryController(store)
	out, err := cc.Rollout(context.Background(), svc, vBad, canaryCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !out.RolledBack || out.Promoted {
		t.Fatalf("regressing release outcome = %+v, want rollback", out)
	}
	if out.CanaryP99 <= out.BaselineP99 {
		t.Fatalf("rollback without a latency signal: canary p99 %v vs baseline %v", out.CanaryP99, out.BaselineP99)
	}
	// The bad version never reached the baseline cohort, CURRENT still
	// names v1, and the release is quarantined against retries.
	cur, err := store.Current()
	if err != nil || cur.Version != out.BaselineVersion {
		t.Fatalf("CURRENT after rollback = %+v, %v, want v%d", cur, err, out.BaselineVersion)
	}
	if _, q := store.QuarantineReason(vBad); !q {
		t.Fatal("rolled-back release not quarantined")
	}
	for _, p := range svc.Pods() {
		if v, _ := scrapeModelVersion(p.URL()); v != out.BaselineVersion {
			t.Fatalf("replica %d still serves v%d after rollback", p.Replica(), v)
		}
	}
	if cc.Rollbacks() != 1 {
		t.Fatalf("Rollbacks = %d, want 1", cc.Rollbacks())
	}
}

func TestCanaryNeverServesCorruptRelease(t *testing.T) {
	store, svc := canaryFixture(t)
	vBad := publishRelease(t, store, 200, 4)
	rel, err := store.Get(vBad)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := store.Bucket().Get(rel.Artifacts[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/3] ^= 0x40
	if err := store.Bucket().Put(rel.Artifacts[0].Key, blob); err != nil {
		t.Fatal(err)
	}

	cc := NewCanaryController(store)
	out, err := cc.Rollout(context.Background(), svc, vBad, canaryCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Quarantined || out.Promoted {
		t.Fatalf("corrupt release outcome = %+v, want quarantined", out)
	}
	if out.CanaryServed != 0 {
		t.Fatalf("corrupt release served %d requests, want 0", out.CanaryServed)
	}
	if _, q := store.QuarantineReason(vBad); !q {
		t.Fatal("corrupt release not quarantined in the store")
	}
	// Every pod kept the incumbent.
	for _, p := range svc.Pods() {
		if v, _ := scrapeModelVersion(p.URL()); v != out.BaselineVersion && v != 1 {
			t.Fatalf("replica %d serves v%d after refused deploy", p.Replica(), v)
		}
	}
}

func TestCanaryRejectsUndersizedService(t *testing.T) {
	store, svc := canaryFixture(t)
	v2 := publishRelease(t, store, 200, 5)
	cc := NewCanaryController(store)
	if _, err := cc.Rollout(context.Background(), svc, v2, CanaryConfig{CanaryPods: 3}); err == nil {
		t.Fatal("rollout with no baseline cohort must fail")
	}
}
