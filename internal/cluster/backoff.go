package cluster

import "time"

// restartBackoff computes restart delays for crash-looping pods: capped
// exponential growth while crashes come quickly, reset to the initial
// delay once the pod has stayed healthy long enough — Kubernetes'
// CrashLoopBackOff discipline. It is pure state + arithmetic driven by an
// explicit clock, so tests assert the exact schedule without sleeping.
//
// Both repair loops share it: the deployment Supervisor (liveness-probe
// driven, either backend) and the process runner's restart-on-crash path.
type restartBackoff struct {
	// Initial is the first delay (default 100ms).
	Initial time.Duration
	// Max caps the exponential growth (default 5s).
	Max time.Duration
	// HealthyReset is how long without a restart counts as "healthy": the
	// next delay starts over at Initial (default 10s).
	HealthyReset time.Duration

	cur  time.Duration
	last time.Time
}

func (b *restartBackoff) defaults() (initial, max, healthy time.Duration) {
	initial, max, healthy = b.Initial, b.Max, b.HealthyReset
	if initial <= 0 {
		initial = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if healthy <= 0 {
		healthy = 10 * time.Second
	}
	return initial, max, healthy
}

// Next returns the delay to wait before the restart happening at `now`,
// and advances the schedule: consecutive restarts within HealthyReset of
// each other double the delay up to Max; a restart after a healthy gap
// starts over at Initial.
func (b *restartBackoff) Next(now time.Time) time.Duration {
	initial, max, healthy := b.defaults()
	switch {
	case b.last.IsZero() || now.Sub(b.last) > healthy:
		b.cur = initial
	default:
		b.cur *= 2
		if b.cur > max {
			b.cur = max
		}
	}
	b.last = now
	return b.cur
}

// Reset forgets the schedule (the next delay will be Initial).
func (b *restartBackoff) Reset() {
	b.cur = 0
	b.last = time.Time{}
}
