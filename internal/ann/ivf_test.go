package ann

import (
	"math/rand"
	"testing"

	"etude/internal/quant"
	"etude/internal/tensor"
	"etude/internal/topk"
)

func randMatrix(seed int64, rows, dim int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.New(rows, dim)
	for i := range m.Data() {
		m.Data()[i] = float32(rng.NormFloat64())
	}
	return m
}

func randQuery(rng *rand.Rand, dim int) *tensor.Tensor {
	q := tensor.New(dim)
	for i := range q.Data() {
		q.Data()[i] = float32(rng.NormFloat64())
	}
	return q
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(tensor.New(4), Config{}); err == nil {
		t.Fatalf("1-D input accepted")
	}
	if _, err := Build(tensor.New(0, 4), Config{}); err == nil {
		t.Fatalf("empty catalog accepted")
	}
}

func TestBuildDefaults(t *testing.T) {
	items := randMatrix(1, 400, 8)
	ix, err := Build(items, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NLists() != 20 { // ceil(sqrt(400))
		t.Fatalf("nlists = %d, want 20", ix.NLists())
	}
	// Every item must live in exactly one list.
	seen := map[int64]int{}
	for _, l := range ix.lists {
		for _, id := range l {
			seen[id]++
		}
	}
	if len(seen) != 400 {
		t.Fatalf("%d/400 items indexed", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("item %d in %d lists", id, n)
		}
	}
}

func TestFullProbeMatchesExact(t *testing.T) {
	items := randMatrix(2, 500, 16)
	ix, err := Build(items, Config{NLists: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 10; q++ {
		query := randQuery(rng, 16)
		exact := topk.TopK(items, query, 10)
		approx, err := ix.Search(query, 10, ix.NLists())
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			if exact[i].Item != approx[i].Item {
				t.Fatalf("query %d pos %d: exact %d != full-probe %d", q, i, exact[i].Item, approx[i].Item)
			}
		}
	}
}

func TestRecallImprovesWithProbes(t *testing.T) {
	items := randMatrix(4, 3000, 16)
	ix, err := Build(items, Config{NLists: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	recallAt := func(nprobe int) float64 {
		var total float64
		const queries = 25
		for q := 0; q < queries; q++ {
			query := randQuery(rng, 16)
			exact := topk.TopK(items, query, 10)
			approx, err := ix.Search(query, 10, nprobe)
			if err != nil {
				t.Fatal(err)
			}
			total += quant.Recall(exact, approx)
		}
		return total / queries
	}
	r1, r8, r32 := recallAt(1), recallAt(8), recallAt(32)
	if !(r1 <= r8 && r8 <= r32) {
		t.Fatalf("recall not monotone in nprobe: %.3f %.3f %.3f", r1, r8, r32)
	}
	if r32 < 0.999 {
		t.Fatalf("full probe recall = %.3f, want 1", r32)
	}
	if r8 < 0.5 {
		t.Fatalf("recall@8/32 probes = %.3f — clustering broken", r8)
	}
	if r1 > 0.95 {
		t.Fatalf("recall@1 probe = %.3f — suspiciously high for random embeddings", r1)
	}
}

func TestScannedFraction(t *testing.T) {
	items := randMatrix(6, 1000, 8)
	ix, err := Build(items, Config{NLists: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f := ix.ScannedFraction(25); f != 1 {
		t.Fatalf("full probe fraction = %v", f)
	}
	if f := ix.ScannedFraction(5); f != 0.2 {
		t.Fatalf("5/25 probes fraction = %v", f)
	}
}

func TestSearchValidation(t *testing.T) {
	items := randMatrix(7, 100, 8)
	ix, _ := Build(items, Config{Seed: 1})
	if _, err := ix.Search(tensor.New(4), 5, 1); err == nil {
		t.Fatalf("wrong query dim accepted")
	}
	// nprobe out of range clamps instead of failing.
	if _, err := ix.Search(tensor.New(8), 5, 0); err != nil {
		t.Fatalf("nprobe 0 should clamp: %v", err)
	}
	if _, err := ix.Search(tensor.New(8), 5, 9999); err != nil {
		t.Fatalf("huge nprobe should clamp: %v", err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	items := randMatrix(8, 300, 8)
	a, _ := Build(items, Config{NLists: 8, Seed: 42})
	b, _ := Build(items, Config{NLists: 8, Seed: 42})
	for i := range a.lists {
		if len(a.lists[i]) != len(b.lists[i]) {
			t.Fatalf("list %d sizes differ: %d vs %d", i, len(a.lists[i]), len(b.lists[i]))
		}
		for j := range a.lists[i] {
			if a.lists[i][j] != b.lists[i][j] {
				t.Fatalf("list %d differs at %d", i, j)
			}
		}
	}
}

func TestNListsClampedToCatalog(t *testing.T) {
	items := randMatrix(9, 5, 4)
	ix, err := Build(items, Config{NLists: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NLists() > 5 {
		t.Fatalf("nlists = %d for a 5-item catalog", ix.NLists())
	}
}
