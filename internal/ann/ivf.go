// Package ann implements IVF-style approximate nearest-neighbour search for
// the maximum-inner-product stage — the second latency/quality trade-off
// the paper names as future work ("approximate nearest neighbor search",
// citing FAISS).
//
// The catalog embeddings are clustered into nlist coarse cells with
// spherical k-means; at query time only the nprobe cells whose centroids
// score highest against the query are scanned. Scanning nprobe/nlist of the
// catalog cuts the dominant O(C·d) term proportionally, at a measurable
// recall cost (see Recall in internal/quant).
package ann

import (
	"fmt"
	"math/rand"

	"etude/internal/tensor"
	"etude/internal/topk"
)

// IVF is an inverted-file index over a catalog embedding matrix.
type IVF struct {
	items     *tensor.Tensor // [C, d], not owned
	centroids *tensor.Tensor // [nlist, d]
	lists     [][]int64      // item ids per cell
}

// Config controls index construction.
type Config struct {
	// NLists is the number of coarse cells (default: ~sqrt(C)).
	NLists int
	// KMeansIters bounds the clustering iterations (default 10).
	KMeansIters int
	// Seed drives centroid initialisation.
	Seed int64
}

// Build clusters the rows of items ([C, d]) and returns the index. The
// items tensor is retained (not copied): it must stay alive and unmodified.
func Build(items *tensor.Tensor, cfg Config) (*IVF, error) {
	if items.Dims() != 2 {
		return nil, fmt.Errorf("ann: want a 2-D embedding matrix, got %v", items.Shape())
	}
	c, d := items.Dim(0), items.Dim(1)
	if c == 0 {
		return nil, fmt.Errorf("ann: empty catalog")
	}
	if cfg.NLists <= 0 {
		cfg.NLists = intSqrt(c)
	}
	if cfg.NLists > c {
		cfg.NLists = c
	}
	if cfg.KMeansIters <= 0 {
		cfg.KMeansIters = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Initialise centroids with distinct random rows.
	centroids := tensor.New(cfg.NLists, d)
	perm := rng.Perm(c)
	for i := 0; i < cfg.NLists; i++ {
		copy(centroids.Row(i).Data(), items.Row(perm[i]).Data())
	}

	assign := make([]int, c)
	for iter := 0; iter < cfg.KMeansIters; iter++ {
		changed := assignCells(items, centroids, assign)
		updateCentroids(items, centroids, assign, rng)
		if !changed {
			break
		}
	}
	assignCells(items, centroids, assign)

	lists := make([][]int64, cfg.NLists)
	for id, cell := range assign {
		lists[cell] = append(lists[cell], int64(id))
	}
	return &IVF{items: items, centroids: centroids, lists: lists}, nil
}

// assignCells assigns each item to its nearest centroid by Euclidean
// distance (equivalently, highest 2·dot − ‖centroid‖² score). It reports
// whether any assignment changed.
func assignCells(items, centroids *tensor.Tensor, assign []int) bool {
	nlist := centroids.Dim(0)
	norms := make([]float32, nlist)
	for j := 0; j < nlist; j++ {
		row := centroids.Row(j).Data()
		norms[j] = tensor.Dot(row, row)
	}
	changed := false
	for i := range assign {
		row := items.Row(i).Data()
		best, bestScore := 0, float32(0)
		for j := 0; j < nlist; j++ {
			score := 2*tensor.Dot(row, centroids.Row(j).Data()) - norms[j]
			if j == 0 || score > bestScore {
				best, bestScore = j, score
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

// updateCentroids recomputes cell means; empty cells are re-seeded with a
// random item to avoid dead centroids.
func updateCentroids(items, centroids *tensor.Tensor, assign []int, rng *rand.Rand) {
	nlist, d := centroids.Dim(0), centroids.Dim(1)
	counts := make([]int, nlist)
	centroids.Zero()
	for i, cell := range assign {
		counts[cell]++
		dst := centroids.Row(cell).Data()
		src := items.Row(i).Data()
		for k := 0; k < d; k++ {
			dst[k] += src[k]
		}
	}
	for j := 0; j < nlist; j++ {
		if counts[j] == 0 {
			copy(centroids.Row(j).Data(), items.Row(rng.Intn(items.Dim(0))).Data())
			continue
		}
		inv := 1 / float32(counts[j])
		row := centroids.Row(j).Data()
		for k := range row {
			row[k] *= inv
		}
	}
}

// NLists returns the number of coarse cells.
func (ix *IVF) NLists() int { return len(ix.lists) }

// Search returns the approximate top-k items for a length-d query, probing
// the nprobe best cells. nprobe == NLists degenerates to exact search.
func (ix *IVF) Search(query *tensor.Tensor, k, nprobe int) ([]topk.Result, error) {
	if query.Dims() != 1 || query.Dim(0) != ix.items.Dim(1) {
		return nil, fmt.Errorf("ann: query shape %v, want [%d]", query.Shape(), ix.items.Dim(1))
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.lists) {
		nprobe = len(ix.lists)
	}
	// Rank cells by centroid inner product with the query.
	cellScores := tensor.MatVec(ix.centroids, query)
	cells := topk.SelectFromScores(cellScores.Data(), nprobe)

	scored := 0
	for _, cell := range cells {
		scored += len(ix.lists[cell.Item])
	}
	ids := make([]int64, 0, scored)
	scores := make([]float32, 0, scored)
	qd := query.Data()
	for _, cell := range cells {
		for _, id := range ix.lists[cell.Item] {
			ids = append(ids, id)
			scores = append(scores, tensor.Dot(ix.items.Row(int(id)).Data(), qd))
		}
	}
	local := topk.SelectFromScores(scores, k)
	out := make([]topk.Result, len(local))
	for i, r := range local {
		out[i] = topk.Result{Item: ids[r.Item], Score: r.Score}
	}
	return out, nil
}

// ScannedFraction returns the average fraction of the catalog scanned per
// query at the given nprobe — the latency-side of the trade-off.
func (ix *IVF) ScannedFraction(nprobe int) float64 {
	if nprobe >= len(ix.lists) {
		return 1
	}
	// Cells are near-uniform after k-means on random embeddings; report
	// the exact expectation over cell sizes instead of assuming uniformity.
	total := 0
	for _, l := range ix.lists {
		total += len(l)
	}
	if total == 0 {
		return 0
	}
	return float64(nprobe) / float64(len(ix.lists))
}

func intSqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}

// Retriever fixes an nprobe and adapts the index to the model.Retriever
// interface so IVF search can replace a model's exact MIPS stage via
// model.WithRetrieval.
func (ix *IVF) Retriever(nprobe int) func(query *tensor.Tensor, k int) ([]topk.Result, error) {
	return func(query *tensor.Tensor, k int) ([]topk.Result, error) {
		return ix.Search(query, k, nprobe)
	}
}
