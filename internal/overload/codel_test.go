package overload

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced virtual clock.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) clock() func() time.Duration {
	return func() time.Duration { return f.now }
}

func TestCoDelBelowTargetNeverDrops(t *testing.T) {
	clk := &fakeClock{}
	cd := NewCoDel(DefaultCoDelConfig(), clk.clock())
	for i := 0; i < 1000; i++ {
		clk.now += time.Millisecond
		if cd.ShouldDrop(2 * time.Millisecond) {
			t.Fatalf("dropped at i=%d with sojourn under target", i)
		}
	}
	if cd.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0", cd.Dropped())
	}
}

func TestCoDelDropsAfterSustainedInterval(t *testing.T) {
	clk := &fakeClock{}
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond}
	cd := NewCoDel(cfg, clk.clock())

	// Above-target sojourns for less than an interval: no drops yet.
	for i := 0; i < 9; i++ {
		clk.now += 10 * time.Millisecond
		if cd.ShouldDrop(20 * time.Millisecond) {
			t.Fatalf("dropped %v into the excursion, before a full interval", clk.now)
		}
	}
	// Crossing the interval boundary enters the drop state.
	clk.now += 20 * time.Millisecond
	if !cd.ShouldDrop(20 * time.Millisecond) {
		t.Fatal("expected first drop after a sustained interval above target")
	}
	if !cd.Dropping() {
		t.Fatal("controller should be in the drop state")
	}
}

func TestCoDelDropRateIncreases(t *testing.T) {
	clk := &fakeClock{}
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond}
	cd := NewCoDel(cfg, clk.clock())

	// Enter the drop state.
	cd.ShouldDrop(50 * time.Millisecond)
	clk.now = 150 * time.Millisecond
	if !cd.ShouldDrop(50 * time.Millisecond) {
		t.Fatal("expected to enter drop state")
	}

	// Sweep another second of sustained congestion in 1ms steps and count
	// drops in each half; the control law must shed faster in the second.
	var first, second int
	for i := 0; i < 1000; i++ {
		clk.now += time.Millisecond
		if cd.ShouldDrop(50 * time.Millisecond) {
			if i < 500 {
				first++
			} else {
				second++
			}
		}
	}
	if first == 0 || second <= first {
		t.Fatalf("drop rate did not increase: first half %d, second half %d", first, second)
	}
}

func TestCoDelRecoversWhenSojournFalls(t *testing.T) {
	clk := &fakeClock{}
	cd := NewCoDel(DefaultCoDelConfig(), clk.clock())

	cd.ShouldDrop(50 * time.Millisecond)
	clk.now = 150 * time.Millisecond
	cd.ShouldDrop(50 * time.Millisecond) // enter drop state
	clk.now += time.Millisecond
	if cd.ShouldDrop(time.Millisecond) {
		t.Fatal("below-target sojourn must never drop")
	}
	if cd.Dropping() {
		t.Fatal("below-target sojourn must exit the drop state")
	}
	// A fresh excursion needs a fresh full interval before dropping again.
	clk.now += time.Millisecond
	if cd.ShouldDrop(50 * time.Millisecond) {
		t.Fatal("new excursion dropped without a sustained interval")
	}
}

func TestCoDelCountMemoryOnReentry(t *testing.T) {
	clk := &fakeClock{}
	cfg := CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond}
	cd := NewCoDel(cfg, clk.clock())

	// Drive a long congested spell to build up the drop count.
	cd.ShouldDrop(50 * time.Millisecond)
	for i := 0; i < 2000; i++ {
		clk.now += time.Millisecond
		cd.ShouldDrop(50 * time.Millisecond)
	}
	if cd.Dropped() < 10 {
		t.Fatalf("expected a built-up drop count, got %d", cd.Dropped())
	}

	// Brief dip below target, then congestion returns immediately.
	clk.now += time.Millisecond
	cd.ShouldDrop(time.Millisecond)
	base := cd.Dropped()
	clk.now += time.Millisecond
	cd.ShouldDrop(50 * time.Millisecond) // arms a new excursion
	var reentryDrops int64
	for i := 0; i < 200; i++ { // 200ms: one interval to re-enter + 100ms in-state
		clk.now += time.Millisecond
		cd.ShouldDrop(50 * time.Millisecond)
	}
	reentryDrops = cd.Dropped() - base
	// With count memory the resumed state sheds much faster than a fresh
	// one would (a fresh state manages ~2 drops in its first 100ms).
	if reentryDrops < 4 {
		t.Fatalf("re-entered drop state shed only %d in 100ms; count memory lost", reentryDrops)
	}
}

func TestCoDelNilSafe(t *testing.T) {
	var cd *CoDel
	if cd.ShouldDrop(time.Hour) {
		t.Fatal("nil CoDel must never drop")
	}
	if cd.Dropped() != 0 || cd.Dropping() || cd.Target() != 0 {
		t.Fatal("nil CoDel accessors must return zero values")
	}
}

func TestCoDelDefaults(t *testing.T) {
	cfg := DefaultCoDelConfig()
	if cfg.Target != 5*time.Millisecond || cfg.Interval != 100*time.Millisecond {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
