package overload

import (
	"container/heap"
	"testing"
	"time"
)

// completionHeap orders simulated request completions by finish time.
type completionHeap []completion

type completion struct {
	at     time.Duration // virtual completion time
	submit time.Duration // virtual submit time
}

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// driveLimiter runs a deterministic virtual-time simulation of a server
// with `capacity` parallel workers, each taking `service` per request, fed
// by a closed loop that keeps as many requests in flight as the limiter
// admits. Returns the limit averaged over the second half of the run —
// AIMD oscillates around its operating point by design, so the converged
// value is the sawtooth's mean, not any one instantaneous sample.
func driveLimiter(t *testing.T, cfg LimiterConfig, capacity int, service time.Duration, releases int) float64 {
	t.Helper()
	lim := NewLimiter(cfg)
	workers := make([]time.Duration, capacity) // per-worker free-at time
	var pending completionHeap
	var now time.Duration

	var limitSum float64
	var limitN int
	rng := uint64(12345)
	for done := 0; done < releases; {
		// Submit everything the limiter admits at the current instant.
		for lim.TryAcquire() {
			// Earliest-free worker serves this request FIFO.
			wi := 0
			for i := range workers {
				if workers[i] < workers[wi] {
					wi = i
				}
			}
			start := workers[wi]
			if start < now {
				start = now
			}
			// ±5% deterministic service jitter: real completions are
			// staggered; perfectly synchronized rounds would drain the
			// queue every round and hide queue delay from the gradient.
			rng = rng*6364136223846793005 + 1442695040888963407
			cost := service * time.Duration(95+(rng>>33)%11) / 100
			workers[wi] = start + cost
			heap.Push(&pending, completion{at: start + cost, submit: now})
		}
		if pending.Len() == 0 {
			t.Fatalf("limiter admitted nothing at t=%v (limit=%d, inflight=%d): deadlock", now, lim.Limit(), lim.Inflight())
		}
		c := heap.Pop(&pending).(completion)
		now = c.at
		lim.Release(c.at-c.submit, false)
		done++
		if done > releases/2 {
			limitSum += float64(lim.Limit())
			limitN++
		}
	}
	return limitSum / float64(limitN)
}

// TestLimiterConvergesToCapacity is the convergence property: for a
// simulated server with a known service rate, the trained limit must land
// within ±20% of the true concurrency capacity — across capacities, service
// times, and starting limits both below and above capacity.
func TestLimiterConvergesToCapacity(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		service  time.Duration
		initial  int
	}{
		{"grow-from-below", 20, time.Millisecond, 4},
		{"shrink-from-above", 20, time.Millisecond, 400},
		{"slow-service", 16, 10 * time.Millisecond, 16},
		{"large-capacity", 50, 500 * time.Microsecond, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := driveLimiter(t, LimiterConfig{Initial: tc.initial}, tc.capacity, tc.service, 40_000)
			lo := 0.8 * float64(tc.capacity)
			hi := 1.2 * float64(tc.capacity)
			if got < lo || got > hi {
				t.Fatalf("limit converged to %.1f, want within ±20%% of capacity %d ([%.1f, %.1f])",
					got, tc.capacity, lo, hi)
			}
		})
	}
}

// TestLimiterNeverDeadlocksAtFloor drives nothing but congestion signals:
// the limit must floor at 1, never 0, and admission must still make
// progress one request at a time.
func TestLimiterNeverDeadlocksAtFloor(t *testing.T) {
	lim := NewLimiter(LimiterConfig{Initial: 64, Min: 0}) // Min=0 must clamp to 1
	for i := 0; i < 10_000; i++ {
		if lim.TryAcquire() {
			lim.Release(0, true) // every completion is a drop signal
		} else {
			// Rejected with nothing in flight would be a deadlock.
			if lim.Inflight() == 0 {
				t.Fatalf("rejected at i=%d with zero in flight (limit=%d)", i, lim.Limit())
			}
		}
	}
	if lim.Limit() != 1 {
		t.Fatalf("limit = %d after sustained congestion, want floor of 1", lim.Limit())
	}
	// Progress at the floor: acquire, saturate, release, acquire again.
	if !lim.TryAcquire() {
		t.Fatal("floor limit must still admit when idle")
	}
	if lim.TryAcquire() {
		t.Fatal("second acquire should exceed the floor limit")
	}
	lim.Release(time.Millisecond, false)
	if !lim.TryAcquire() {
		t.Fatal("release must free the floor slot")
	}
	lim.Release(time.Millisecond, false)
}

func TestLimiterIdleDoesNotDrift(t *testing.T) {
	// A server far from saturation (limit never binding) must not grow its
	// limit toward Max on healthy latencies alone.
	lim := NewLimiter(LimiterConfig{Initial: 16})
	for i := 0; i < 1000; i++ {
		if !lim.TryAcquire() {
			t.Fatal("unsaturated limiter rejected")
		}
		lim.Release(time.Millisecond, false) // one at a time: never saturates
	}
	if got := lim.Limit(); got != 16 {
		t.Fatalf("idle limit drifted to %d, want 16", got)
	}
}

func TestLimiterRejectedCounter(t *testing.T) {
	lim := NewLimiter(LimiterConfig{Initial: 1, Min: 1})
	if !lim.TryAcquire() {
		t.Fatal("first acquire should succeed")
	}
	for i := 0; i < 5; i++ {
		if lim.TryAcquire() {
			t.Fatal("acquire past the limit should fail")
		}
	}
	if lim.Rejected() != 5 {
		t.Fatalf("Rejected() = %d, want 5", lim.Rejected())
	}
	lim.Release(time.Millisecond, false)
}

func TestLimiterNilSafe(t *testing.T) {
	var lim *Limiter
	if !lim.TryAcquire() {
		t.Fatal("nil limiter must admit everything")
	}
	lim.Release(time.Second, true)
	if lim.Limit() != 0 || lim.Inflight() != 0 || lim.Baseline() != 0 || lim.Rejected() != 0 {
		t.Fatal("nil limiter accessors must return zero values")
	}
}
