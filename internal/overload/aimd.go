package overload

import (
	"sync"
	"time"
)

// LimiterConfig tunes the AIMD adaptive concurrency limiter.
type LimiterConfig struct {
	// Initial is the starting in-flight limit (default 16).
	Initial int
	// Min floors the limit (default 1; values below 1 are clamped — a limit
	// of zero would deadlock admission with nothing in flight to release).
	Min int
	// Max caps additive growth (default 1024).
	Max int
	// Tolerance is the latency gradient that separates "healthy" from
	// "congested": a window whose minimum latency exceeds Tolerance × the
	// no-load baseline triggers a multiplicative decrease (default 1.1).
	// The limiter therefore converges to the largest window at which
	// latency stays within Tolerance of uncongested service — i.e. the
	// serving capacity — rather than to a hand-picked queue length.
	Tolerance float64
	// Backoff is the multiplicative-decrease factor (default 0.9 — gentle,
	// because the latency signal fires long before total collapse).
	Backoff float64
	// Window is the minimum completions aggregated per control decision
	// (default 16). The effective window is max(Window, current limit):
	// latency feedback lags by a full round of in-flight requests, so
	// adjusting faster than once per round over-corrects and oscillates —
	// the same reason TCP moves its window once per RTT, not per ACK.
	Window int
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Initial <= 0 {
		c.Initial = 16
	}
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 1024
	}
	if c.Tolerance <= 1 {
		c.Tolerance = 1.1
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.9
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	return c
}

// DefaultLimiterConfig returns the standard limiter tuning.
func DefaultLimiterConfig() LimiterConfig {
	return LimiterConfig{}.withDefaults()
}

// Limiter is an AIMD adaptive concurrency limiter: admission is bounded by
// a limit trained on observed latency against a no-load baseline. Windows
// of completions are aggregated; a window whose minimum latency stays
// within Tolerance of the baseline — and that actually saturated the
// current limit — earns an additive +1, while a congested window (minimum
// above the gradient threshold, or any completion flagged dropped) pays a
// multiplicative decrease. The baseline is the minimum latency ever
// observed: the service with the queue ahead of it empty. Minima, not
// means, on both sides make the gradient robust to heterogeneous request
// costs — under a FIFO queue even the cheapest request pays the full
// standing queue delay, so the window minimum isolates congestion from
// per-request cost variance, and the limiter recovers even when it starts
// far above capacity and never sees an uncongested *average*.
//
// The zero-latency dropped signal matters as much as the gradient: a
// request that timed out, was deadline-dropped downstream, or was shed by
// CoDel never produces an honest latency sample, but it is the strongest
// possible congestion evidence.
//
// All methods are safe for concurrent use and never block.
type Limiter struct {
	mu  sync.Mutex
	cfg LimiterConfig

	limit    float64
	inflight int

	// Window accumulators, reset after every control decision.
	winMin      time.Duration
	winN        int
	winDropped  bool
	winMaxInUse int
	sinceAdjust int

	baseline time.Duration
	rejected int64
}

// NewLimiter builds a limiter.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, limit: float64(cfg.Initial)}
}

// TryAcquire claims one in-flight slot. It reports false — without
// blocking — when the adaptive limit is reached; the caller sheds the
// request. Every successful TryAcquire must be paired with exactly one
// Release.
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= l.intLimit() {
		l.rejected++
		return false
	}
	l.inflight++
	if l.inflight > l.winMaxInUse {
		l.winMaxInUse = l.inflight
	}
	return true
}

// Release returns a slot and feeds the control loop: latency is the
// request's end-to-end time, and dropped marks completions that carry a
// congestion signal instead of an honest latency (timeout, deadline
// expiry, CoDel shed, downstream refusal).
func (l *Limiter) Release(latency time.Duration, dropped bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight > 0 {
		l.inflight--
	}
	if dropped {
		l.winDropped = true
	} else if latency > 0 {
		if l.winN == 0 || latency < l.winMin {
			l.winMin = latency
		}
		l.winN++
		if l.baseline == 0 || latency < l.baseline {
			l.baseline = latency
		}
	}
	l.sinceAdjust++
	win := l.cfg.Window
	if n := l.intLimit(); n > win {
		win = n
	}
	if l.sinceAdjust >= win {
		l.adjust()
	}
}

// adjust runs one AIMD control decision over the completed window.
// Callers hold l.mu.
func (l *Limiter) adjust() {
	congested := l.winDropped
	if l.winN > 0 && float64(l.winMin) > float64(l.baseline)*l.cfg.Tolerance {
		congested = true
	}
	switch {
	case congested:
		l.limit *= l.cfg.Backoff
		if l.limit < float64(l.cfg.Min) {
			l.limit = float64(l.cfg.Min)
		}
	case l.winMaxInUse >= l.intLimit():
		// Additive increase — but only when the window actually pressed
		// against the limit; an idle server must not drift to Max.
		l.limit++
		if l.limit > float64(l.cfg.Max) {
			l.limit = float64(l.cfg.Max)
		}
	}
	l.winMin, l.winN = 0, 0
	l.winDropped = false
	l.winMaxInUse = l.inflight
	l.sinceAdjust = 0
}

func (l *Limiter) intLimit() int {
	n := int(l.limit)
	if n < l.cfg.Min {
		n = l.cfg.Min
	}
	return n
}

// Limit returns the current in-flight limit.
func (l *Limiter) Limit() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.intLimit()
}

// Inflight returns the currently held slots.
func (l *Limiter) Inflight() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Baseline returns the learned no-load latency (zero until the first
// honest completion).
func (l *Limiter) Baseline() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.baseline
}

// Rejected returns how many TryAcquire calls the limit refused.
func (l *Limiter) Rejected() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejected
}
