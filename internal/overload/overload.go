// Package overload implements ETUDE's self-tuning overload-control
// primitives: a CoDel-style queue discipline that bounds queueing *delay*
// rather than queue *length*, and an AIMD adaptive concurrency limiter that
// learns the serving capacity from observed latency instead of relying on a
// hand-tuned pending-request bound.
//
// Both primitives are substrate-agnostic by construction: they consume
// explicit timestamps (offsets from an arbitrary epoch, like trace.Clock)
// instead of reading the wall clock, so the live inference server drives
// them with monotonic wall time while the discrete-event simulator
// (internal/sim) drives the very same control laws with virtual time —
// an overload chaos scenario therefore replays deterministically.
//
// The motivation is the congestion-collapse regime of capacity-driven
// scale-out recommendation serving: past saturation, a FIFO queue bounded
// only by length serves every admitted request late, spending encoder and
// MIPS FLOPs on responses whose callers already timed out. CoDel sheds from
// the head the moment sojourn time stays above target for an interval, and
// the AIMD limiter shrinks the in-flight window until observed latency sits
// near the no-load baseline — goodput plateaus near capacity instead of
// collapsing.
package overload

import (
	"math"
	"sync"
	"time"
)

// CoDelConfig tunes the controlled-delay queue discipline.
type CoDelConfig struct {
	// Target is the acceptable standing queue delay: sojourn times below it
	// never trigger drops (default 5ms — CoDel's classic target, which also
	// suits a sub-50ms serving SLO).
	Target time.Duration
	// Interval is how long the minimum sojourn must stay above Target
	// before the controller starts dropping (default 100ms). It should
	// cover at least a round-trip worth of normal latency variation.
	Interval time.Duration
}

func (c CoDelConfig) withDefaults() CoDelConfig {
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	return c
}

// DefaultCoDelConfig returns the classic 5ms/100ms controller.
func DefaultCoDelConfig() CoDelConfig {
	return CoDelConfig{}.withDefaults()
}

// CoDel is the controlled-delay dropper, evaluated at dequeue time: the
// caller computes each entry's sojourn (now − enqueue) and asks ShouldDrop.
// While the minimum sojourn over an interval stays above target, entries
// are shed from the head on the standard control-law schedule — the drop
// rate increases with the square root of the drop count until the queue
// delay falls back under target.
//
// All methods are safe for concurrent use; the clock must be monotone
// non-decreasing across calls.
type CoDel struct {
	mu  sync.Mutex
	cfg CoDelConfig
	// clock supplies "now" as an offset from an arbitrary epoch.
	clock func() time.Duration

	// firstAbove is when the current above-target excursion would have
	// lasted a full interval (0 = sojourn currently under target).
	firstAbove time.Duration
	// dropping marks the active drop state; dropNext schedules the next
	// drop and count is the drops in the current state (control law:
	// dropNext += interval/sqrt(count)).
	dropping bool
	dropNext time.Duration
	count    int
	// lastCount remembers count at state exit so a quickly re-entered drop
	// state resumes at a higher drop rate instead of restarting gently.
	lastCount int
	exitedAt  time.Duration

	dropped int64
}

// NewCoDel builds a controller. A nil clock reads the process monotonic
// clock; the simulator passes its engine's virtual clock so drop decisions
// replay deterministically.
func NewCoDel(cfg CoDelConfig, clock func() time.Duration) *CoDel {
	if clock == nil {
		epoch := time.Now()
		clock = func() time.Duration { return time.Since(epoch) }
	}
	return &CoDel{cfg: cfg.withDefaults(), clock: clock}
}

// ShouldDrop reports whether the entry now at the head of the queue, having
// waited sojourn, should be shed instead of served. Call it once per
// dequeue, in queue order.
func (c *CoDel) ShouldDrop(sojourn time.Duration) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()

	if sojourn < c.cfg.Target {
		// Queue delay is fine: leave the drop state and reset the excursion.
		if c.dropping {
			c.lastCount = c.count
			c.exitedAt = now
		}
		c.dropping = false
		c.firstAbove = 0
		return false
	}
	if c.firstAbove == 0 {
		// First above-target sojourn: arm the interval timer, don't drop yet.
		c.firstAbove = now + c.cfg.Interval
		return false
	}
	if now < c.firstAbove {
		return false // above target, but not yet for a full interval
	}
	if !c.dropping {
		c.dropping = true
		// Re-entering shortly after exit resumes near the previous drop
		// rate (the control law's "count memory"): congestion that never
		// really went away should not get a fresh gentle start.
		if c.lastCount > 2 && now-c.exitedAt < 8*c.cfg.Interval {
			c.count = c.lastCount - 2
		} else {
			c.count = 1
		}
		c.dropNext = now + c.intervalFor(c.count)
		c.dropped++
		return true
	}
	if now >= c.dropNext {
		c.count++
		c.dropNext += c.intervalFor(c.count)
		c.dropped++
		return true
	}
	return false
}

// intervalFor is the control law: successive drops come interval/sqrt(n)
// apart, so the shed rate grows until the standing queue dissolves.
func (c *CoDel) intervalFor(n int) time.Duration {
	return time.Duration(float64(c.cfg.Interval) / math.Sqrt(float64(n)))
}

// Dropped returns how many entries the controller has shed.
func (c *CoDel) Dropped() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Dropping reports whether the controller is currently in the drop state
// (sustained above-target queue delay).
func (c *CoDel) Dropping() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropping
}

// Target returns the configured sojourn target.
func (c *CoDel) Target() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.Target
}
