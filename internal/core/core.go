// Package core is the ETUDE framework proper: the declarative experiment
// specification a data scientist writes (models to evaluate, workload
// statistics, hardware options, latency and throughput constraints), the
// runners that execute it — live against real in-process deployments, or on
// the discrete-event simulator for accelerator hardware — and the result
// records written to the object store when an experiment terminates.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"etude/internal/cluster"
	"etude/internal/costmodel"
	"etude/internal/device"
	"etude/internal/loadgen"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/server"
	"etude/internal/sim"
	"etude/internal/workload"
)

// Spec is a declarative benchmark experiment: which models to deploy on
// which hardware, under what workload, against which constraints.
type Spec struct {
	// Name labels the experiment (also the results key prefix).
	Name string `json:"name"`
	// Models lists the model names to evaluate.
	Models []string `json:"models"`
	// Instances lists the instance-type names to evaluate.
	Instances []string `json:"instances"`
	// CatalogSize is C for all deployed models.
	CatalogSize int `json:"catalog_size"`
	// Faithful selects the RecBole-faithful (buggy) model variants.
	Faithful bool `json:"faithful,omitempty"`
	// JIT serves JIT-compiled model variants.
	JIT bool `json:"jit"`
	// TargetRate is the ramp-up target in requests/second.
	TargetRate float64 `json:"target_rate"`
	// Duration is the benchmark length (paper default: 10 minutes).
	Duration time.Duration `json:"duration"`
	// AlphaLength and AlphaClicks are the workload marginals.
	AlphaLength float64 `json:"alpha_length"`
	// AlphaClicks shapes item popularity (live runs only; the simulator
	// needs only session lengths).
	AlphaClicks float64 `json:"alpha_clicks"`
	// LatencySLO is the p90 budget (paper: 50ms).
	LatencySLO time.Duration `json:"latency_slo"`
	// Replicas is the fleet size per deployment (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Seed drives weights and workloads.
	Seed int64 `json:"seed"`
}

func (s Spec) withDefaults() Spec {
	if s.Duration <= 0 {
		s.Duration = 10 * time.Minute
	}
	if s.AlphaLength == 0 {
		s.AlphaLength, _ = workload.BolMarginals()
	}
	if s.AlphaClicks == 0 {
		_, s.AlphaClicks = workload.BolMarginals()
	}
	if s.LatencySLO <= 0 {
		s.LatencySLO = costmodel.LatencySLO
	}
	if s.Replicas <= 0 {
		s.Replicas = 1
	}
	return s
}

func (s Spec) validate() error {
	if s.CatalogSize <= 0 {
		return fmt.Errorf("core: catalog size must be positive, got %d", s.CatalogSize)
	}
	if s.TargetRate <= 0 {
		return fmt.Errorf("core: target rate must be positive, got %v", s.TargetRate)
	}
	if len(s.Models) == 0 || len(s.Instances) == 0 {
		return fmt.Errorf("core: spec needs at least one model and one instance type")
	}
	return nil
}

func (s Spec) modelConfig() model.Config {
	return model.Config{CatalogSize: s.CatalogSize, Seed: s.Seed, Faithful: s.Faithful}
}

// Measurement is the outcome of one (model, instance type) combination.
type Measurement struct {
	Experiment    string              `json:"experiment"`
	Model         string              `json:"model"`
	Instance      string              `json:"instance"`
	JIT           bool                `json:"jit"`
	Replicas      int                 `json:"replicas"`
	TargetRate    float64             `json:"target_rate"`
	Latency       metrics.Snapshot    `json:"latency"`
	Errors        int64               `json:"errors"`
	Backpressured int64               `json:"backpressured"`
	// Outcomes breaks responses down by status class (2xx/4xx/5xx) and
	// error kind (timeout/refused/server), plus degraded responses,
	// retries and drain stragglers. Zero-valued for pre-existing stored
	// results.
	Outcomes metrics.OutcomeCounts `json:"outcomes"`
	Sent          int64               `json:"sent"`
	MeetsSLO      bool                `json:"meets_slo"`
	Series        []metrics.TickStats `json:"series,omitempty"`
}

// RunSim executes the experiment on the discrete-event simulator: one run
// per (model, instance) pair, each with Replicas simulated instances.
func RunSim(spec Spec) ([]Measurement, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	var out []Measurement
	for _, name := range spec.Models {
		for _, instName := range spec.Instances {
			devSpec, err := device.ByName(instName)
			if err != nil {
				return nil, err
			}
			m, err := runOneSim(spec, name, devSpec)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %s: %w", name, instName, err)
			}
			out = append(out, m)
		}
	}
	return out, nil
}

func runOneSim(spec Spec, modelName string, devSpec device.Spec) (Measurement, error) {
	eng := sim.NewEngine()
	fleet := make([]*sim.Instance, spec.Replicas)
	for i := range fleet {
		in, err := sim.NewInstance(eng, devSpec, modelName, spec.modelConfig(), spec.JIT, 2*time.Millisecond, devSpec.MaxBatch)
		if err != nil {
			return Measurement{}, err
		}
		fleet[i] = in
	}
	meas := Measurement{
		Experiment: spec.Name,
		Model:      modelName,
		Instance:   devSpec.Name,
		JIT:        spec.JIT,
		Replicas:   spec.Replicas,
		TargetRate: spec.TargetRate,
	}
	if !fleet[0].Fits() {
		// Model does not fit the accelerator: infeasible, zero traffic.
		return meas, nil
	}
	res, err := sim.RunBenchmark(eng, sim.LoadConfig{
		TargetRate:  spec.TargetRate,
		Duration:    spec.Duration,
		AlphaLength: spec.AlphaLength,
		Seed:        spec.Seed,
	}, fleet)
	if err != nil {
		return Measurement{}, err
	}
	meas.Latency = res.Recorder.Overall()
	meas.Errors = res.Recorder.Errors()
	meas.Outcomes = res.Recorder.Outcomes()
	meas.Backpressured = res.Backpressured
	meas.Sent = res.Sent
	meas.MeetsSLO = res.Meets(spec.LatencySLO)
	meas.Series = res.Recorder.Series()
	return meas, nil
}

// RunLive executes the experiment against real in-process deployments (the
// CPU serving path): models are published to the cluster's bucket, deployed
// behind readiness probes, and load-tested over HTTP with Algorithm 2.
// Only the "cpu" instance type can run live — accelerators are simulated.
func RunLive(ctx context.Context, c *cluster.Cluster, spec Spec) ([]Measurement, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	var out []Measurement
	for _, name := range spec.Models {
		for _, instName := range spec.Instances {
			if instName != "cpu" {
				return nil, fmt.Errorf("core: live runs support only cpu instances, got %q (use RunSim)", instName)
			}
			m, err := runOneLive(ctx, c, spec, name)
			if err != nil {
				return nil, fmt.Errorf("core: live %s: %w", name, err)
			}
			out = append(out, m)
		}
	}
	return out, nil
}

func runOneLive(ctx context.Context, c *cluster.Cluster, spec Spec, modelName string) (meas Measurement, err error) {
	key := fmt.Sprintf("models/%s/%s.json", spec.Name, modelName)
	manifest := model.Manifest{Model: modelName, Config: spec.modelConfig()}
	data, err := model.MarshalManifest(manifest)
	if err != nil {
		return Measurement{}, err
	}
	if err := c.Bucket().Put(key, data); err != nil {
		return Measurement{}, err
	}
	deployment := spec.Name + "-" + modelName
	svc, err := c.Deploy(ctx, deployment, cluster.PodSpec{
		Runtime:      cluster.RuntimeEtude,
		ModelKey:     key,
		InstanceType: "cpu",
		Server:       server.Options{JIT: spec.JIT},
	}, spec.Replicas)
	if err != nil {
		return Measurement{}, err
	}
	defer func() {
		if derr := c.Delete(deployment); derr != nil && err == nil {
			err = derr
		}
	}()

	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: spec.CatalogSize,
		NumClicks:   1,
		AlphaLength: spec.AlphaLength,
		AlphaClicks: spec.AlphaClicks,
		Seed:        spec.Seed,
	})
	if err != nil {
		return Measurement{}, err
	}
	res, err := loadgen.Run(ctx, loadgen.Config{
		TargetRate: spec.TargetRate,
		Duration:   spec.Duration,
	}, gen, svc.Target())
	if err != nil {
		return Measurement{}, err
	}
	snap := res.Recorder.Overall()
	sent := res.Recorder.Sent()
	okRatio := 0.0
	if sent > 0 {
		okRatio = float64(sent-res.Recorder.Errors()) / float64(sent+res.Backpressured)
	}
	return Measurement{
		Experiment:    spec.Name,
		Model:         modelName,
		Instance:      "cpu",
		JIT:           spec.JIT,
		Replicas:      spec.Replicas,
		TargetRate:    spec.TargetRate,
		Latency:       snap,
		Errors:        res.Recorder.Errors(),
		Outcomes:      res.Outcomes,
		Backpressured: res.Backpressured,
		Sent:          sent,
		MeetsSLO:      snap.P90 <= spec.LatencySLO && okRatio >= 0.99,
		Series:        res.Recorder.Series(),
	}, nil
}

// SaveResults writes measurements as JSON to the bucket — the paper's "the
// observed measurements are written to a Google storage bucket upon
// termination of the experiment".
func SaveResults(b objstore.Bucket, key string, ms []Measurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding results: %w", err)
	}
	return b.Put(key, data)
}

// LoadResults reads measurements back from the bucket.
func LoadResults(b objstore.Bucket, key string) ([]Measurement, error) {
	data, err := b.Get(key)
	if err != nil {
		return nil, err
	}
	var ms []Measurement
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("core: decoding results: %w", err)
	}
	return ms, nil
}
