package core

import (
	"context"
	"testing"
	"time"

	"etude/internal/cluster"
	"etude/internal/objstore"
)

func simSpec() Spec {
	return Spec{
		Name:        "test",
		Models:      []string{"gru4rec"},
		Instances:   []string{"cpu"},
		CatalogSize: 100_000,
		JIT:         true,
		TargetRate:  100,
		Duration:    10 * time.Second,
		Seed:        1,
	}
}

func TestSpecValidation(t *testing.T) {
	bad := simSpec()
	bad.CatalogSize = 0
	if _, err := RunSim(bad); err == nil {
		t.Fatalf("zero catalog accepted")
	}
	bad = simSpec()
	bad.TargetRate = 0
	if _, err := RunSim(bad); err == nil {
		t.Fatalf("zero rate accepted")
	}
	bad = simSpec()
	bad.Models = nil
	if _, err := RunSim(bad); err == nil {
		t.Fatalf("no models accepted")
	}
	bad = simSpec()
	bad.Instances = []string{"tpu"}
	if _, err := RunSim(bad); err == nil {
		t.Fatalf("unknown instance accepted")
	}
	bad = simSpec()
	bad.Models = []string{"ghost"}
	if _, err := RunSim(bad); err == nil {
		t.Fatalf("unknown model accepted")
	}
}

func TestRunSimProducesMeasurements(t *testing.T) {
	spec := simSpec()
	spec.Models = []string{"gru4rec", "core"}
	spec.Instances = []string{"cpu", "gpu-t4"}
	ms, err := RunSim(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d measurements, want 4", len(ms))
	}
	for _, m := range ms {
		if m.Sent == 0 {
			t.Errorf("%s/%s: nothing sent", m.Model, m.Instance)
		}
		if m.Latency.P90 <= 0 {
			t.Errorf("%s/%s: zero p90", m.Model, m.Instance)
		}
		if len(m.Series) == 0 {
			t.Errorf("%s/%s: no series", m.Model, m.Instance)
		}
		if !m.MeetsSLO {
			t.Errorf("%s/%s: 100 req/s at C=1e5 must meet the SLO (p90 %v)", m.Model, m.Instance, m.Latency.P90)
		}
	}
}

func TestRunSimOverloadFailsSLO(t *testing.T) {
	spec := simSpec()
	spec.CatalogSize = 1_000_000
	spec.TargetRate = 1000 // far beyond one CPU instance
	ms, err := RunSim(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].MeetsSLO {
		t.Fatalf("1000 req/s at C=1e6 on one CPU must fail: %+v", ms[0].Latency)
	}
	if ms[0].Backpressured == 0 {
		t.Fatalf("expected backpressure under overload")
	}
}

func TestRunLiveEndToEnd(t *testing.T) {
	bucket := objstore.NewMemBucket()
	c := cluster.New(bucket)
	defer c.Teardown()

	spec := Spec{
		Name:        "live",
		Models:      []string{"stamp"},
		Instances:   []string{"cpu"},
		CatalogSize: 2_000,
		JIT:         true,
		TargetRate:  100,
		Duration:    2 * time.Second,
		Seed:        1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ms, err := RunLive(ctx, c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d measurements", len(ms))
	}
	m := ms[0]
	if m.Sent == 0 || m.Errors != 0 {
		t.Fatalf("live run: sent=%d errors=%d", m.Sent, m.Errors)
	}
	if !m.MeetsSLO {
		t.Fatalf("tiny catalog live run must meet the SLO: p90=%v", m.Latency.P90)
	}
	// The model artifact must have been published through the bucket.
	if _, err := bucket.Get("models/live/stamp.json"); err != nil {
		t.Fatalf("model artifact not in bucket: %v", err)
	}
}

func TestRunLiveRejectsGPU(t *testing.T) {
	c := cluster.New(objstore.NewMemBucket())
	defer c.Teardown()
	spec := simSpec()
	spec.Instances = []string{"gpu-t4"}
	if _, err := RunLive(context.Background(), c, spec); err == nil {
		t.Fatalf("live GPU run must be rejected")
	}
}

func TestSaveLoadResults(t *testing.T) {
	bucket := objstore.NewMemBucket()
	ms, err := RunSim(simSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveResults(bucket, "results/test.json", ms); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResults(bucket, "results/test.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ms) {
		t.Fatalf("round trip length %d != %d", len(got), len(ms))
	}
	if got[0].Model != ms[0].Model || got[0].Latency.P90 != ms[0].Latency.P90 {
		t.Fatalf("round trip mismatch: %+v vs %+v", got[0], ms[0])
	}
	if _, err := LoadResults(bucket, "missing"); err == nil {
		t.Fatalf("missing results accepted")
	}
	_ = bucket.Put("bad", []byte("nope"))
	if _, err := LoadResults(bucket, "bad"); err == nil {
		t.Fatalf("corrupt results accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := Spec{}.withDefaults()
	if s.Duration != 10*time.Minute {
		t.Errorf("default duration = %v, paper uses 10-minute ramps", s.Duration)
	}
	if s.LatencySLO != 50*time.Millisecond {
		t.Errorf("default SLO = %v, paper uses 50ms p90", s.LatencySLO)
	}
	if s.AlphaLength <= 1 || s.AlphaClicks <= 1 {
		t.Errorf("default marginals invalid: %v %v", s.AlphaLength, s.AlphaClicks)
	}
}

func TestRunSimDeterministic(t *testing.T) {
	a, err := RunSim(simSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(simSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Latency != b[0].Latency || a[0].Sent != b[0].Sent {
		t.Fatalf("simulated runs not reproducible: %+v vs %+v", a[0].Latency, b[0].Latency)
	}
}

func TestRunSimFaithfulSlower(t *testing.T) {
	spec := simSpec()
	spec.Models = []string{"repeatnet"}
	spec.CatalogSize = 1_000_000
	spec.TargetRate = 120
	spec.Duration = 15 * time.Second

	fixed, err := RunSim(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Faithful = true
	faithful, err := RunSim(spec)
	if err != nil {
		t.Fatal(err)
	}
	if faithful[0].Latency.P90 <= fixed[0].Latency.P90 {
		t.Fatalf("faithful RepeatNet p90 %v not worse than fixed %v",
			faithful[0].Latency.P90, fixed[0].Latency.P90)
	}
}

func TestRunSimReplicasScaleOut(t *testing.T) {
	spec := simSpec()
	spec.CatalogSize = 1_000_000
	spec.TargetRate = 400
	spec.Duration = 15 * time.Second

	single, err := RunSim(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Replicas = 3
	fleet, err := RunSim(spec)
	if err != nil {
		t.Fatal(err)
	}
	if single[0].MeetsSLO {
		t.Fatalf("one CPU instance should fail 400 req/s at C=1e6")
	}
	if !fleet[0].MeetsSLO {
		t.Fatalf("three CPU instances should handle 400 req/s at C=1e6: %+v", fleet[0].Latency)
	}
}
