package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.9) != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h.Snapshot())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 10*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	got := h.Quantile(0.5)
	if !within(got, 10*time.Millisecond, 0.03) {
		t.Fatalf("p50 = %v, want ≈ 10ms", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	values := make([]time.Duration, 0, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		// Log-uniform latencies from 100µs to 1s.
		d := time.Duration(float64(100*time.Microsecond) * pow(10, 4*rng.Float64()))
		values = append(values, d)
		h.Record(d)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := values[int(q*float64(len(values)))-1]
		got := h.Quantile(q)
		if !within(got, want, 0.05) {
			t.Errorf("q=%v: got %v, want ≈ %v", q, got, want)
		}
	}
}

func TestHistogramQuantileClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	if h.Quantile(-1) == 0 || h.Quantile(2) == 0 {
		t.Fatalf("out-of-range quantiles must clamp, not zero out")
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Nanosecond) // below the smallest bucket
	h.Record(24 * time.Hour)  // beyond the largest bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 24*time.Hour {
		t.Fatalf("max must be exact: %v", h.Max())
	}
	if h.Quantile(0.01) > 2*time.Microsecond {
		t.Fatalf("low quantile should land in the first bucket, got %v", h.Quantile(0.01))
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	if got := h.Mean(); got != 15*time.Millisecond {
		t.Fatalf("mean = %v, want 15ms", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	b.Record(100 * time.Millisecond)
	b.Record(200 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 200*time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	if !within(a.Quantile(0.99), 200*time.Millisecond, 0.05) {
		t.Fatalf("merged p99 = %v", a.Quantile(0.99))
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Intn(1000)+1) * time.Millisecond)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d", h.Count())
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	if s := h.Snapshot().String(); s == "" {
		t.Fatalf("empty string rendering")
	}
}

func TestRecorderSeries(t *testing.T) {
	r := NewRecorder()
	r.RecordSent(0)
	r.RecordSent(0)
	r.RecordLatency(0, 5*time.Millisecond)
	r.RecordError(0)
	r.RecordSent(2)
	r.RecordLatency(2, 50*time.Millisecond)

	series := r.Series()
	if len(series) != 3 {
		t.Fatalf("series length = %d, want 3 (ticks 0..2)", len(series))
	}
	if series[0].Sent != 2 || series[0].Completed != 2 || series[0].Errors != 1 {
		t.Fatalf("tick 0 = %+v", series[0])
	}
	if series[1].Sent != 0 || series[1].Completed != 0 {
		t.Fatalf("gap tick must be zero: %+v", series[1])
	}
	if !within(series[2].P90, 50*time.Millisecond, 0.05) {
		t.Fatalf("tick 2 p90 = %v", series[2].P90)
	}
	if r.Errors() != 1 || r.Sent() != 3 {
		t.Fatalf("totals: errors=%d sent=%d", r.Errors(), r.Sent())
	}
	if r.Overall().Count != 2 {
		t.Fatalf("overall count = %d (errors must not pollute latencies)", r.Overall().Count)
	}
}

func TestRecorderEmptySeries(t *testing.T) {
	if s := NewRecorder().Series(); len(s) != 0 {
		t.Fatalf("empty recorder series = %v", s)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.RecordSent(i % 10)
				r.RecordLatency(i%10, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Sent() != 4000 || r.Overall().Count != 4000 {
		t.Fatalf("concurrent totals wrong: %d %d", r.Sent(), r.Overall().Count)
	}
}

// Property: quantiles are monotone in q and bounded by [first bucket, Max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		h := NewHistogram()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n)+1; i++ {
			h.Record(time.Duration(rng.Intn(1_000_000)+1) * time.Microsecond)
		}
		prev := time.Duration(0)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		// The p100 upper bound may overshoot Max by one bucket's growth.
		return float64(prev) <= float64(h.Max())*bucketGrowth+float64(minValue)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func within(got, want time.Duration, tol float64) bool {
	lo := float64(want) * (1 - tol)
	hi := float64(want) * (1 + tol)
	return float64(got) >= lo && float64(got) <= hi
}

func pow(b, e float64) float64 {
	r := 1.0
	for e >= 1 {
		r *= b
		e--
	}
	if e > 0 {
		// fractional remainder via repeated square root is overkill here;
		// use the cheap series-free approximation b^e ≈ 1 + e(b-1) only for
		// the log-uniform test driver.
		r *= 1 + e*(b-1)
	}
	return r
}

// Property: merging two histograms preserves counts and never lowers the
// maximum; the merged p50 lies between the two inputs' p50s.
func TestMergeProperty(t *testing.T) {
	f := func(seedA, seedB int64, nA, nB uint8) bool {
		a, b := NewHistogram(), NewHistogram()
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		for i := 0; i < int(nA)+1; i++ {
			a.Record(time.Duration(rngA.Intn(1_000_000)+1) * time.Microsecond)
		}
		for i := 0; i < int(nB)+1; i++ {
			b.Record(time.Duration(rngB.Intn(1_000_000)+1) * time.Microsecond)
		}
		aCount, bCount := a.Count(), b.Count()
		aMax, bMax := a.Max(), b.Max()
		p50A, p50B := a.Quantile(0.5), b.Quantile(0.5)

		a.Merge(b)
		if a.Count() != aCount+bCount {
			return false
		}
		if a.Max() < aMax || a.Max() < bMax {
			return false
		}
		lo, hi := p50A, p50B
		if lo > hi {
			lo, hi = hi, lo
		}
		merged := a.Quantile(0.5)
		return merged >= lo && merged <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Top-overflow sentinel: when the requested quantile resolves to the last
// (overflow) bucket, where out-of-range values are clamped, Quantile must
// report the exact Max rather than the quantised bucket bound — and never
// panic.
func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram()
	h.Record(24 * time.Hour)
	h.Record(48 * time.Hour)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 48*time.Hour {
			t.Fatalf("q=%v = %v, want exact max 48h", q, got)
		}
	}
	// Mixed: in-range median, overflow tail.
	m := NewHistogram()
	m.Record(time.Millisecond)
	m.Record(time.Millisecond)
	m.Record(time.Millisecond)
	m.Record(24 * time.Hour)
	if got := m.Quantile(0.5); !within(got, time.Millisecond, 0.03) {
		t.Fatalf("median = %v, want ≈ 1ms", got)
	}
	if got := m.Quantile(1); got != 24*time.Hour {
		t.Fatalf("p100 = %v, want exact 24h", got)
	}
}

func TestQuantileNaN(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	if got := h.Quantile(math.NaN()); got == 0 {
		t.Fatalf("NaN quantile must clamp to a sentinel, got 0")
	}
}

// Property (bucket boundaries): for any duration, the bucket it lands in
// brackets it — the previous bucket's upper bound lies below d (within one
// growth step of float slack) and d never exceeds the bucket's own upper
// bound by more than one growth step. Runs alongside TestMergeProperty as
// the histogram's geometric contract.
func TestBucketBoundaryProperty(t *testing.T) {
	f := func(raw uint64) bool {
		// Span nanoseconds up to ~2 hours, crossing both histogram edges.
		d := time.Duration(raw % uint64(2*time.Hour))
		i := bucketIndex(d)
		if i < 0 || i >= numBuckets {
			return false
		}
		upper := bucketUpper(i)
		if float64(upper)*bucketGrowth < float64(d) && i != numBuckets-1 {
			return false // bucket's upper bound must cover d (except overflow)
		}
		if i > 0 && d > minValue {
			// d must lie above the previous bucket's upper bound (one growth
			// step of slack for the log/pow float round trip).
			if float64(d)*bucketGrowth < float64(bucketUpper(i-1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderErrorKindSeries(t *testing.T) {
	r := NewRecorder()
	r.RecordErrorKind(0, KindTimeout)
	r.RecordErrorKind(0, KindRefused)
	r.RecordErrorKind(1, KindServer)
	r.RecordError(1)
	r.RecordStraggler(2)
	s := r.Series()
	if len(s) != 3 {
		t.Fatalf("series length = %d", len(s))
	}
	if s[0].Timeouts != 1 || s[0].Refused != 1 || s[0].Errors != 2 {
		t.Fatalf("tick 0 = %+v", s[0])
	}
	if s[1].ServerErrors != 1 || s[1].OtherErrors != 1 || s[1].Errors != 2 {
		t.Fatalf("tick 1 = %+v", s[1])
	}
	if s[2].Timeouts != 1 || s[2].Errors != 1 {
		t.Fatalf("tick 2 (straggler counts as timeout) = %+v", s[2])
	}
	for _, ts := range s {
		if ts.Timeouts+ts.Refused+ts.ServerErrors+ts.OtherErrors != ts.Errors {
			t.Fatalf("kinds must sum to Errors: %+v", ts)
		}
	}
	o := r.Outcomes()
	if o.Timeouts != 2 || o.Refused != 1 || o.ServerErrors != 1 || o.OtherErrors != 1 || o.Stragglers != 1 {
		t.Fatalf("outcomes = %+v", o)
	}
}

// Property: bucket indexing is monotone — a longer duration never lands in
// an earlier bucket.
func TestBucketMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a := time.Duration(aRaw) * time.Microsecond
		b := time.Duration(bRaw) * time.Microsecond
		if a > b {
			a, b = b, a
		}
		return bucketIndex(a) <= bucketIndex(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketUpperCoversIndex(t *testing.T) {
	// Every recordable duration must satisfy d ≤ bucketUpper(bucketIndex(d))
	// within one growth step (the histogram's accuracy contract).
	for _, d := range []time.Duration{
		time.Microsecond, 10 * time.Microsecond, time.Millisecond,
		17 * time.Millisecond, time.Second, 10 * time.Second,
	} {
		upper := bucketUpper(bucketIndex(d))
		if float64(upper)*bucketGrowth < float64(d) {
			t.Fatalf("d=%v exceeds bucket upper %v", d, upper)
		}
	}
}
