package metrics

import (
	"sync"
	"time"
)

// TickStats aggregates one load-generator tick (one second of wall or
// virtual time): how many requests completed, how many errored, and the
// latency distribution of the successes.
type TickStats struct {
	Tick      int           `json:"tick"`
	Sent      int64         `json:"sent"`
	Completed int64         `json:"completed"`
	Errors    int64         `json:"errors"`
	Degraded  int64         `json:"degraded,omitempty"`
	// Partial counts successful partial-coverage responses; CoverageMean is
	// the mean shard-coverage fraction over the tick's successes (1 when
	// every answer saw the full catalog, 0 when the tick had no successes).
	Partial      int64   `json:"partial,omitempty"`
	CoverageMean float64 `json:"coverage_mean,omitempty"`
	Retries   int64         `json:"retries,omitempty"`
	// Errors split by kind (their sum equals Errors) so a time-series plot
	// shows when the failure mode shifted, not just that errors occurred.
	Timeouts     int64 `json:"timeouts,omitempty"`
	Refused      int64 `json:"refused,omitempty"`
	ServerErrors int64 `json:"server_errors,omitempty"`
	OtherErrors  int64 `json:"other_errors,omitempty"`
	P50       time.Duration `json:"p50"`
	P90       time.Duration `json:"p90"`
	P99       time.Duration `json:"p99"`
	// Tenant labels the workload the recorder measured (the X-Tenant value
	// the load generator stamped on its requests); empty for single-tenant
	// runs.
	Tenant string `json:"tenant,omitempty"`
}

// Recorder collects per-tick statistics plus an overall histogram over a
// whole benchmark run. It is safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	ticks    map[int]*tickAcc
	overall  *Histogram
	errs     int64
	sent     int64
	tenant   string
	outcomes OutcomeCounts
}

type tickAcc struct {
	sent       int64
	completed  int64
	errors     int64
	degraded   int64
	partial    int64
	covSum     float64 // sum of partial responses' coverage fractions
	retries    int64
	timeouts   int64
	refused    int64
	serverErrs int64
	otherErrs  int64
	hist       *Histogram
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{ticks: make(map[int]*tickAcc), overall: NewHistogram()}
}

func (r *Recorder) tick(t int) *tickAcc {
	acc, ok := r.ticks[t]
	if !ok {
		acc = &tickAcc{hist: NewHistogram()}
		r.ticks[t] = acc
	}
	return acc
}

// SetTenant labels every tick of this recorder with a tenant name — the
// per-tenant CSV series of a multi-tenant run use one recorder per tenant.
func (r *Recorder) SetTenant(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tenant = tenant
}

// RecordSent notes that a request was issued during tick t.
func (r *Recorder) RecordSent(t int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tick(t).sent++
	r.sent++
}

// RecordLatency notes a successful response observed during tick t.
func (r *Recorder) RecordLatency(t int, d time.Duration) {
	r.mu.Lock()
	acc := r.tick(t)
	acc.completed++
	acc.hist.Record(d)
	r.mu.Unlock()
	r.overall.Record(d)
}

// RecordError notes a failed (timeout / HTTP error) response during tick t.
// Use RecordErrorKind when the failure mode is known.
func (r *Recorder) RecordError(t int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordErrorLocked(t).otherErrs++
	r.outcomes.OtherErrors++
}

func (r *Recorder) recordErrorLocked(t int) *tickAcc {
	acc := r.tick(t)
	acc.completed++
	acc.errors++
	r.errs++
	return acc
}

// Overall returns the run-wide latency snapshot (successes only).
func (r *Recorder) Overall() Snapshot {
	return r.overall.Snapshot()
}

// Errors returns the run-wide error count.
func (r *Recorder) Errors() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errs
}

// Sent returns the run-wide issued-request count.
func (r *Recorder) Sent() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sent
}

// Series returns per-tick statistics in tick order.
func (r *Recorder) Series() []TickStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	maxTick := -1
	for t := range r.ticks {
		if t > maxTick {
			maxTick = t
		}
	}
	out := make([]TickStats, 0, maxTick+1)
	for t := 0; t <= maxTick; t++ {
		acc, ok := r.ticks[t]
		ts := TickStats{Tick: t, Tenant: r.tenant}
		if ok {
			ts.Sent = acc.sent
			ts.Completed = acc.completed
			ts.Errors = acc.errors
			ts.Degraded = acc.degraded
			ts.Partial = acc.partial
			// Mean coverage over the tick's successes: full-coverage answers
			// contribute 1 each, partial answers their fraction.
			if successes := acc.completed - acc.errors; successes > 0 {
				ts.CoverageMean = (acc.covSum + float64(successes-acc.partial)) / float64(successes)
			}
			ts.Retries = acc.retries
			ts.Timeouts = acc.timeouts
			ts.Refused = acc.refused
			ts.ServerErrors = acc.serverErrs
			ts.OtherErrors = acc.otherErrs
			ts.P50 = acc.hist.Quantile(0.5)
			ts.P90 = acc.hist.Quantile(0.9)
			ts.P99 = acc.hist.Quantile(0.99)
		}
		out = append(out, ts)
	}
	return out
}
