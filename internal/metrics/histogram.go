// Package metrics provides the measurement infrastructure of the benchmark:
// thread-safe log-bucketed latency histograms with percentile queries, and
// per-second time series of throughput, errors and latency quantiles — the
// numbers ETUDE reports back to the data scientist.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// histogram bucket geometry: buckets grow by 2% per step, covering 1µs up
// to ~17 minutes in about 1050 buckets. 2% growth keeps any percentile's
// relative quantisation error at or below 2%.
const (
	bucketGrowth = 1.02
	minValue     = time.Microsecond
	numBuckets   = 1056
)

var logGrowth = math.Log(bucketGrowth)

// Histogram is a fixed-size, lock-free latency histogram. The zero value is
// NOT ready to use; construct with NewHistogram. All methods are safe for
// concurrent use.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
	maxNs   atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

func bucketIndex(d time.Duration) int {
	if d <= minValue {
		return 0
	}
	i := int(math.Log(float64(d)/float64(minValue))/logGrowth) + 1
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketUpper returns the representative (upper-bound) duration of bucket i.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return minValue
	}
	return time.Duration(float64(minValue) * math.Pow(bucketGrowth, float64(i)))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded latency (exact, not quantised).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile returns the q-quantile latency (q in [0,1]), e.g. Quantile(0.9)
// is the p90. Edge cases return sentinels instead of panicking: an empty
// histogram yields 0, out-of-range q is clamped into [0,1], and a quantile
// resolving to the top overflow bucket — where observations beyond the
// bucket range (~17 min) are clamped, so the quantised bucket bound could
// under-report arbitrarily — yields the exact recorded Max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets-1; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	// Rank lands in the overflow bucket (or, under a racing Record, past the
	// buckets counted so far): the exact max is the only honest answer.
	return h.Max()
}

// Merge adds all observations of other into h. Max is merged exactly.
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < numBuckets; i++ {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		cur := h.maxNs.Load()
		om := other.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Snapshot summarises the histogram at a point in time.
type Snapshot struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P90   time.Duration `json:"p90"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// Snapshot returns the current summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// String renders the snapshot compactly for logs and reports.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P90.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
