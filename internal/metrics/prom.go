package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled because the
// repo takes no external dependencies. The builder emits counters, gauges
// and pre-aggregated summaries (quantiles from histogram Snapshots, in
// seconds per Prometheus convention); ParsePromText is the strict
// parse-it-back half used by the endpoint round-trip tests and available to
// scrape-side tooling.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// PromBuilder accumulates an exposition document. Not safe for concurrent
// use; build, render, discard.
type PromBuilder struct {
	b     strings.Builder
	typed map[string]bool
}

// NewPromBuilder returns an empty builder.
func NewPromBuilder() *PromBuilder {
	return &PromBuilder{typed: make(map[string]bool)}
}

func (p *PromBuilder) header(name, help, typ string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	fmt.Fprintf(&p.b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&p.b, "# TYPE %s %s\n", name, typ)
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(l.Value)
		parts[i] = fmt.Sprintf(`%s="%s"`, l.Name, v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (p *PromBuilder) sample(name string, labels []Label, v float64) {
	fmt.Fprintf(&p.b, "%s%s %s\n", name, labelString(labels), formatValue(v))
}

// Counter emits a monotonically increasing cumulative value.
func (p *PromBuilder) Counter(name, help string, v float64, labels ...Label) {
	p.header(name, help, "counter")
	p.sample(name, labels, v)
}

// Gauge emits an instantaneous value.
func (p *PromBuilder) Gauge(name, help string, v float64, labels ...Label) {
	p.header(name, help, "gauge")
	p.sample(name, labels, v)
}

// Summary emits a latency distribution snapshot as a Prometheus summary:
// φ-quantile samples (0.5/0.9/0.99) plus _sum and _count, with durations
// converted to seconds. The snapshot's Sum is reconstructed as Mean×Count
// (exact up to float rounding — Mean is itself Sum/Count).
func (p *PromBuilder) Summary(name, help string, s Snapshot, labels ...Label) {
	p.header(name, help, "summary")
	quantile := func(q string, d time.Duration) {
		ql := append(append([]Label(nil), labels...), Label{"quantile", q})
		p.sample(name, ql, d.Seconds())
	}
	quantile("0.5", s.P50)
	quantile("0.9", s.P90)
	quantile("0.99", s.P99)
	p.sample(name+"_sum", labels, s.Mean.Seconds()*float64(s.Count))
	p.sample(name+"_count", labels, float64(s.Count))
}

// String renders the accumulated document.
func (p *PromBuilder) String() string { return p.b.String() }

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample identity as name{k="v",...} with sorted label
// names — convenient for test lookups.
func (s PromSample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	names := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%q", k, s.Labels[k])
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParsePromText strictly parses a text exposition document: every sample
// must have a valid metric name, well-formed labels, a parseable value, and
// a preceding # TYPE declaration for its family (the _sum/_count/quantile
// conventions of summaries are understood). It returns the samples in
// document order.
func ParsePromText(r io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(r)
	typed := map[string]string{}
	var out []PromSample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !promMetricRe.MatchString(fields[2]) {
				return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		family := s.Name
		if typed[family] == "" {
			// Summary/histogram series carry the family name plus a suffix.
			for _, suf := range []string{"_sum", "_count", "_bucket"} {
				if base := strings.TrimSuffix(family, suf); base != family && typed[base] != "" {
					family = base
					break
				}
			}
			if typed[family] == "" {
				return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, s.Name)
			}
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !promMetricRe.MatchString(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for _, pair := range splitLabels(body) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			name := strings.TrimSpace(pair[:eq])
			val := strings.TrimSpace(pair[eq+1:])
			if !promLabelRe.MatchString(name) {
				return s, fmt.Errorf("bad label name %q", name)
			}
			unquoted, err := strconv.Unquote(val)
			if err != nil {
				return s, fmt.Errorf("label value %s not quoted: %w", val, err)
			}
			s.Labels[name] = unquoted
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(body string) []string {
	var parts []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range body {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuote:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		parts = append(parts, cur.String())
	}
	return parts
}
