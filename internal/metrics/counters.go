package metrics

import (
	"fmt"
	"time"
)

// ErrorKind classifies why a request failed, so that resilience experiments
// can distinguish a saturated server shedding load (refused) from a hung one
// (timeout) — the two look identical in a plain error count but demand
// opposite operator responses.
type ErrorKind int

const (
	// KindTimeout is a request that exceeded its latency deadline (client
	// timeout, straggler at drain, simulated SLO bust).
	KindTimeout ErrorKind = iota
	// KindRefused is load actively shed before service: HTTP 429/503,
	// connection refused, a down pod, or an open circuit breaker.
	KindRefused
	// KindServer is a server-side failure response (5xx other than 503).
	KindServer
	// KindOther is everything else (transport faults, bad requests, ...).
	KindOther
	numErrorKinds
)

// String names the kind for reports.
func (k ErrorKind) String() string {
	switch k {
	case KindTimeout:
		return "timeout"
	case KindRefused:
		return "refused"
	case KindServer:
		return "server"
	default:
		return "other"
	}
}

// OutcomeCounts aggregates response outcomes beyond the latency histogram:
// HTTP status classes, error kinds, degraded (fallback) responses and retry
// attempts. Retries are tracked separately from Sent so that retried traffic
// does not silently inflate throughput.
type OutcomeCounts struct {
	// Status2xx..Status5xx count responses by HTTP status class. Requests
	// that never produced a status (transport failure, timeout) are absent.
	Status2xx int64 `json:"status_2xx"`
	Status4xx int64 `json:"status_4xx"`
	Status5xx int64 `json:"status_5xx"`
	// Timeouts, Refused, ServerErrors and OtherErrors split the error count
	// by kind; their sum equals the Recorder's error total.
	Timeouts     int64 `json:"timeouts"`
	Refused      int64 `json:"refused"`
	ServerErrors int64 `json:"server_errors"`
	OtherErrors  int64 `json:"other_errors"`
	// Degraded counts successful responses served by the cheap fallback
	// path (flagged by the server); they are included in the success count
	// and latency histogram but must be reported separately — a run that
	// "meets the SLO" by degrading 40% of answers did not really meet it.
	Degraded int64 `json:"degraded"`
	// Partial counts successful responses merged from a strict subset of
	// shard groups (X-Degraded: partial). Like Degraded, they are in the
	// success count and latency histogram but reported separately: partial
	// availability is availability with a quality asterisk.
	Partial int64 `json:"partial"`
	// Retries counts retry attempts (excluded from Sent).
	Retries int64 `json:"retries"`
	// Stragglers counts requests still outstanding when the drain window
	// expired; they are also recorded as timeout errors.
	Stragglers int64 `json:"stragglers"`
	// BudgetExhausted counts logical requests abandoned because the next
	// retry could not fit inside the request's overall SLO budget; they are
	// also recorded as timeout errors (the deadline, not the server,
	// decided the outcome).
	BudgetExhausted int64 `json:"budget_exhausted"`
}

// String renders the counters compactly for logs and reports.
func (o OutcomeCounts) String() string {
	return fmt.Sprintf("2xx=%d 4xx=%d 5xx=%d timeout=%d refused=%d server=%d other=%d degraded=%d partial=%d retries=%d stragglers=%d budget_exhausted=%d",
		o.Status2xx, o.Status4xx, o.Status5xx,
		o.Timeouts, o.Refused, o.ServerErrors, o.OtherErrors,
		o.Degraded, o.Partial, o.Retries, o.Stragglers, o.BudgetExhausted)
}

// RecordStatus notes the HTTP status class of a response observed during
// tick t (call alongside RecordLatency / RecordErrorKind).
func (r *Recorder) RecordStatus(t int, code int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case code >= 200 && code < 300:
		r.outcomes.Status2xx++
	case code >= 400 && code < 500:
		r.outcomes.Status4xx++
	case code >= 500 && code < 600:
		r.outcomes.Status5xx++
	}
}

// RecordErrorKind notes a failed request of the given kind during tick t.
// It subsumes RecordError: the run-wide error count includes every kind,
// and the kind is also attributed to tick t's series entry.
func (r *Recorder) RecordErrorKind(t int, kind ErrorKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	acc := r.recordErrorLocked(t)
	switch kind {
	case KindTimeout:
		acc.timeouts++
		r.outcomes.Timeouts++
	case KindRefused:
		acc.refused++
		r.outcomes.Refused++
	case KindServer:
		acc.serverErrs++
		r.outcomes.ServerErrors++
	default:
		acc.otherErrs++
		r.outcomes.OtherErrors++
	}
}

// RecordDegraded notes a successful response served by the degraded
// (fallback) path during tick t, with its end-to-end latency.
func (r *Recorder) RecordDegraded(t int, d time.Duration) {
	r.mu.Lock()
	acc := r.tick(t)
	acc.completed++
	acc.degraded++
	acc.hist.Record(d)
	r.outcomes.Degraded++
	r.mu.Unlock()
	r.overall.Record(d)
}

// RecordPartial notes a successful partial-coverage response during tick t:
// a sharded answer merged from coverage·S of S shard groups. It counts as a
// success (it is one — the availability the partial policy buys) while the
// per-tick coverage mean exposes the quality cost.
func (r *Recorder) RecordPartial(t int, d time.Duration, coverage float64) {
	r.mu.Lock()
	acc := r.tick(t)
	acc.completed++
	acc.partial++
	acc.covSum += coverage
	acc.hist.Record(d)
	r.outcomes.Partial++
	r.mu.Unlock()
	r.overall.Record(d)
}

// RecordRetry notes one retry attempt issued during tick t. Retries are not
// added to Sent.
func (r *Recorder) RecordRetry(t int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tick(t).retries++
	r.outcomes.Retries++
}

// RecordStraggler notes a request that was still outstanding when the drain
// window expired: it counts as a timeout error (the client gave up) so that
// stragglers stay in the denominator instead of silently vanishing.
func (r *Recorder) RecordStraggler(t int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordErrorLocked(t).timeouts++
	r.outcomes.Timeouts++
	r.outcomes.Stragglers++
}

// RecordBudgetExhausted notes a logical request abandoned mid-retry because
// its remaining SLO budget could not cover another attempt: a timeout error
// (mirroring RecordStraggler), tracked separately so overload runs can tell
// "server kept refusing" from "client ran out of time to keep asking".
func (r *Recorder) RecordBudgetExhausted(t int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordErrorLocked(t).timeouts++
	r.outcomes.Timeouts++
	r.outcomes.BudgetExhausted++
}

// Outcomes returns the run-wide outcome counters.
func (r *Recorder) Outcomes() OutcomeCounts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.outcomes
}
