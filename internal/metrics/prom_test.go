package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func buildSampleDoc() string {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	b := NewPromBuilder()
	b.Counter("etude_requests_total", "Requests received.", 100)
	b.Counter("etude_errors_total", "Errors by kind.", 3, Label{"kind", "timeout"})
	b.Counter("etude_errors_total", "Errors by kind.", 1, Label{"kind", "refused"})
	b.Gauge("etude_queue_depth", "Pending requests.", 7)
	b.Summary("etude_request_seconds", "End-to-end latency.", h.Snapshot())
	b.Summary("etude_stage_seconds", "Per-stage latency.", h.Snapshot(), Label{"stage", "mips-topk"})
	return b.String()
}

func TestPromRoundTrip(t *testing.T) {
	doc := buildSampleDoc()
	samples, err := ParsePromText(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse-back failed: %v\ndoc:\n%s", err, doc)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if byKey["etude_requests_total"] != 100 {
		t.Fatalf("requests_total = %v", byKey["etude_requests_total"])
	}
	if byKey[`etude_errors_total{kind="timeout"}`] != 3 {
		t.Fatalf("timeout errors = %v (keys: %v)", byKey[`etude_errors_total{kind="timeout"}`], byKey)
	}
	if byKey["etude_queue_depth"] != 7 {
		t.Fatalf("queue depth = %v", byKey["etude_queue_depth"])
	}
	if byKey["etude_request_seconds_count"] != 100 {
		t.Fatalf("summary count = %v", byKey["etude_request_seconds_count"])
	}
	// Sum reconstructed as mean×count: 100 obs averaging 50.5ms = 5.05s.
	if got := byKey["etude_request_seconds_sum"]; math.Abs(got-5.05) > 0.01 {
		t.Fatalf("summary sum = %v, want ≈ 5.05", got)
	}
	p50 := byKey[`etude_request_seconds{quantile="0.5"}`]
	p99 := byKey[`etude_request_seconds{quantile="0.99"}`]
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles out of order: p50=%v p99=%v", p50, p99)
	}
	if byKey[`etude_stage_seconds_count{stage="mips-topk"}`] != 100 {
		t.Fatalf("labeled summary count missing: %v", byKey)
	}
}

func TestPromTypeDeclaredOnce(t *testing.T) {
	doc := buildSampleDoc()
	if n := strings.Count(doc, "# TYPE etude_errors_total"); n != 1 {
		t.Fatalf("TYPE for multi-sample family declared %d times, want 1", n)
	}
}

func TestPromEscaping(t *testing.T) {
	b := NewPromBuilder()
	b.Gauge("g", "help", 1, Label{"path", `a"b\c`})
	samples, err := ParsePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, b.String())
	}
	if samples[0].Labels["path"] != `a"b\c` {
		t.Fatalf("escaped label round-trip = %q", samples[0].Labels["path"])
	}
}

func TestParsePromTextRejectsGarbage(t *testing.T) {
	for name, doc := range map[string]string{
		"no type":       "orphan_metric 1\n",
		"bad value":     "# TYPE m gauge\nm banana\n",
		"bad name":      "# TYPE 9bad gauge\n9bad 1\n",
		"unquoted":      "# TYPE m gauge\nm{a=b} 1\n",
		"unterminated":  "# TYPE m gauge\nm{a=\"b\" 1\n",
		"unknown type":  "# TYPE m widget\nm 1\n",
		"malformed cmt": "# NOPE m gauge\n",
	} {
		if _, err := ParsePromText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected parse error for %q", name, doc)
		}
	}
}

func TestPromInfValues(t *testing.T) {
	b := NewPromBuilder()
	b.Gauge("g", "help", math.Inf(1))
	samples, err := ParsePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !math.IsInf(samples[0].Value, 1) {
		t.Fatalf("value = %v, want +Inf", samples[0].Value)
	}
}
