package topk

import (
	"math/rand"
	"reflect"
	"testing"
)

// splitScores partitions a score vector into contiguous shards, runs the
// per-shard selection and rebases the local row indices into global item
// ids — exactly what the shard tier's workers do.
func splitScores(scores []float32, shards, k int) [][]Result {
	partials := make([][]Result, 0, shards)
	size := (len(scores) + shards - 1) / shards
	for from := 0; from < len(scores); from += size {
		to := from + size
		if to > len(scores) {
			to = len(scores)
		}
		part := SelectFromScores(scores[from:to], k)
		for i := range part {
			part[i].Item += int64(from)
		}
		partials = append(partials, part)
	}
	return partials
}

// The tentpole correctness property: for any catalog, any shard count and
// any k, merging the per-shard top-k lists equals the unsharded top-k
// exactly — same items, same scores, same order. Duplicate scores are the
// interesting case (tie-break by lower item id must survive the merge), so
// scores are drawn from a small discrete set to force collisions.
func TestMergePartialEqualsUnshardedTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		c := 1 + rng.Intn(500)
		scores := make([]float32, c)
		for i := range scores {
			// ~16 distinct values over up to 500 items: ties guaranteed.
			scores[i] = float32(rng.Intn(16)) / 4
		}
		k := 1 + rng.Intn(40)
		shards := 1 + rng.Intn(8)
		want := SelectFromScores(scores, k)
		got := MergePartial(splitScores(scores, shards, k), k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (C=%d k=%d shards=%d): merged sharded top-k diverged\n got %v\nwant %v",
				trial, c, k, shards, got, want)
		}
	}
}

func TestMergePartialTieBreaksByItemID(t *testing.T) {
	// Two shards whose heads tie on score: the lower item id must win.
	partials := [][]Result{
		{{Item: 7, Score: 1}, {Item: 9, Score: 0.5}},
		{{Item: 3, Score: 1}, {Item: 4, Score: 1}},
	}
	got := MergePartial(partials, 3)
	want := []Result{{Item: 3, Score: 1}, {Item: 4, Score: 1}, {Item: 7, Score: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie-break order = %v, want %v", got, want)
	}
}

func TestMergePartialEdgeCases(t *testing.T) {
	if got := MergePartial(nil, 5); got != nil {
		t.Fatalf("merge of no partials = %v, want nil", got)
	}
	if got := MergePartial([][]Result{{}, {}}, 5); len(got) != 0 {
		t.Fatalf("merge of empty partials = %v, want empty", got)
	}
	if got := MergePartial([][]Result{{{Item: 1, Score: 2}}}, 0); got != nil {
		t.Fatalf("k=0 merge = %v, want nil", got)
	}
	// k larger than the union: everything comes back, still ordered.
	got := MergePartial([][]Result{{{Item: 2, Score: 3}}, {{Item: 1, Score: 5}}}, 10)
	want := []Result{{Item: 1, Score: 5}, {Item: 2, Score: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("k>union merge = %v, want %v", got, want)
	}
}
