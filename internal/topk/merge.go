package topk

// MergePartial performs the k-way merge of per-shard top-k lists into the
// exact global top-k — the gather half of the catalog-sharded retrieval
// tier (internal/shard).
//
// Each partial must be sorted the way SelectFromScores emits results:
// descending by score with ties broken towards the lower item id. Because a
// shard's partial already contains its k best items, the merged list is
// bit-identical to an unsharded top-k over the union of the shards — the
// property the shard tier's correctness rests on (see the accompanying
// property test). Items across partials are normally disjoint (contiguous
// catalog partitions); duplicates, if present, are kept.
//
// Cost is O((P + k)·log P) for P partials — the explicit merge term of the
// sharded cost model (shard.MergeOps).
func MergePartial(partials [][]Result, k int) []Result {
	if k <= 0 {
		return nil
	}
	// heap holds the indices of non-exhausted partials, ordered by their
	// head element: best score first, lower item id on ties — the exact
	// inverse of the selection heap's eviction order, so the merge pops
	// results in SelectFromScores' output order.
	heap := make([]int, 0, len(partials))
	pos := make([]int, len(partials))
	better := func(a, b int) bool {
		ra, rb := partials[a][pos[a]], partials[b][pos[b]]
		if ra.Score != rb.Score {
			return ra.Score > rb.Score
		}
		return ra.Item < rb.Item
	}
	down := func(i int) {
		for {
			child := 2*i + 1
			if child >= len(heap) {
				return
			}
			if child+1 < len(heap) && better(heap[child+1], heap[child]) {
				child++
			}
			if !better(heap[child], heap[i]) {
				return
			}
			heap[i], heap[child] = heap[child], heap[i]
			i = child
		}
	}
	for i, p := range partials {
		if len(p) > 0 {
			heap = append(heap, i)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	if len(heap) == 0 {
		return nil
	}
	out := make([]Result, 0, k)
	for len(heap) > 0 && len(out) < k {
		src := heap[0]
		out = append(out, partials[src][pos[src]])
		pos[src]++
		if pos[src] == len(partials[src]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return out
}
