// Package topk implements the maximum-inner-product search (MIPS) stage that
// dominates inference latency in session-based recommendation models.
//
// Given the learned d-dimensional representations of all C catalog items and
// a d-dimensional session representation, every model in this repository
// scores all items with an inner product and returns the k best. This is the
// O(C·(d + log k)) term from the paper's complexity analysis: C·d for the
// scoring pass and C·log k for maintaining the best-k heap.
package topk

import (
	"fmt"

	"etude/internal/tensor"
)

// Result is one recommended item with its model score.
type Result struct {
	Item  int64   // catalog item identifier (row in the embedding matrix)
	Score float32 // inner-product score
}

// TopK scores all rows of items (an [C,d] embedding matrix) against query (a
// length-d vector) and returns the k highest-scoring items in descending
// score order. If k exceeds C, all C items are returned.
func TopK(items, query *tensor.Tensor, k int) []Result {
	scores := tensor.MatVec(items, query)
	return SelectFromScores(scores.Data(), k)
}

// SelectFromScores returns the k largest entries of scores in descending
// order using a bounded min-heap: O(C log k) instead of O(C log C) for a full
// sort. Ties are broken towards the lower item id for deterministic output.
func SelectFromScores(scores []float32, k int) []Result {
	if k <= 0 {
		return nil
	}
	if k > len(scores) {
		k = len(scores)
	}
	h := newMinHeap(k)
	for i, s := range scores {
		h.offer(int64(i), s)
	}
	return h.drainDescending()
}

// SelectFromScoresSorted is the exhaustive baseline used by the top-k
// ablation benchmark: it fully sorts the score vector (O(C log C)) and takes
// the first k. Results are identical to SelectFromScores.
func SelectFromScoresSorted(scores []float32, k int) []Result {
	if k <= 0 {
		return nil
	}
	if k > len(scores) {
		k = len(scores)
	}
	t := tensor.FromSlice(scores, len(scores))
	idx := t.ArgSortDesc()
	out := make([]Result, k)
	for i := 0; i < k; i++ {
		out[i] = Result{Item: int64(idx[i]), Score: scores[idx[i]]}
	}
	return out
}

// minHeap is a fixed-capacity binary min-heap over (item, score) pairs. The
// root holds the current k-th best score, so a candidate only enters the heap
// when it beats the root.
type minHeap struct {
	items  []int64
	scores []float32
	cap    int
}

func newMinHeap(k int) *minHeap {
	return &minHeap{
		items:  make([]int64, 0, k),
		scores: make([]float32, 0, k),
		cap:    k,
	}
}

// less orders by score ascending with item id descending as tie-break, so
// that for equal scores the larger item id is considered "worse" and evicted
// first, yielding deterministic lowest-id-wins results.
func (h *minHeap) less(a, b int) bool {
	if h.scores[a] != h.scores[b] {
		return h.scores[a] < h.scores[b]
	}
	return h.items[a] > h.items[b]
}

func (h *minHeap) swap(a, b int) {
	h.items[a], h.items[b] = h.items[b], h.items[a]
	h.scores[a], h.scores[b] = h.scores[b], h.scores[a]
}

func (h *minHeap) offer(item int64, score float32) {
	if len(h.items) < h.cap {
		h.items = append(h.items, item)
		h.scores = append(h.scores, score)
		h.up(len(h.items) - 1)
		return
	}
	// Replace the root if the candidate is strictly better than the current
	// k-th best (or equal with a smaller item id).
	if score < h.scores[0] || (score == h.scores[0] && item > h.items[0]) {
		return
	}
	h.items[0], h.scores[0] = item, score
	h.down(0)
}

func (h *minHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *minHeap) down(i int) {
	n := len(h.items)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if child+1 < n && h.less(child+1, child) {
			child++
		}
		if !h.less(child, i) {
			return
		}
		h.swap(i, child)
		i = child
	}
}

// drainDescending empties the heap into a slice sorted from best to worst.
func (h *minHeap) drainDescending() []Result {
	n := len(h.items)
	out := make([]Result, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = Result{Item: h.items[0], Score: h.scores[0]}
		last := len(h.items) - 1
		h.swap(0, last)
		h.items = h.items[:last]
		h.scores = h.scores[:last]
		h.down(0)
	}
	return out
}

// Sharded scores the catalog in shards and merges per-shard top-k results.
// It is the building block for the sampled-shard serving mode used with very
// large catalogs on simulated accelerators (see internal/device): scoring a
// shard preserves the code path and result shape of full-catalog MIPS while
// bounding real compute.
func Sharded(items, query *tensor.Tensor, k, shardSize int) []Result {
	if shardSize <= 0 {
		panic(fmt.Sprintf("topk: non-positive shard size %d", shardSize))
	}
	c := items.Dim(0)
	h := newMinHeap(min(k, c))
	buf := tensor.New(min(shardSize, c))
	for from := 0; from < c; from += shardSize {
		to := min(from+shardSize, c)
		shard := items.Rows(from, to)
		dst := buf
		if to-from != buf.Dim(0) {
			dst = tensor.New(to - from)
		}
		tensor.MatVecInto(dst, shard, query)
		for i, s := range dst.Data() {
			h.offer(int64(from+i), s)
		}
	}
	return h.drainDescending()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
