package topk_test

import (
	"fmt"

	"etude/internal/tensor"
	"etude/internal/topk"
)

// Score a session representation against a catalog embedding matrix and
// take the best two items — the O(C(d+log k)) stage every SBR model ends
// with.
func ExampleTopK() {
	catalog := tensor.FromSlice([]float32{
		1, 0,
		0, 1,
		1, 1,
	}, 3, 2)
	session := tensor.FromSlice([]float32{2, 1}, 2)
	for _, r := range topk.TopK(catalog, session, 2) {
		fmt.Printf("item %d score %.0f\n", r.Item, r.Score)
	}
	// Output:
	// item 2 score 3
	// item 0 score 2
}

func ExampleSelectFromScores() {
	scores := []float32{0.1, 0.9, 0.5}
	best := topk.SelectFromScores(scores, 1)
	fmt.Println(best[0].Item)
	// Output: 1
}
