package topk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"etude/internal/tensor"
)

func TestSelectFromScoresBasic(t *testing.T) {
	scores := []float32{0.1, 0.9, 0.5, 0.7, 0.3}
	got := SelectFromScores(scores, 3)
	want := []Result{{1, 0.9}, {3, 0.7}, {2, 0.5}}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSelectKLargerThanC(t *testing.T) {
	got := SelectFromScores([]float32{1, 2}, 10)
	if len(got) != 2 || got[0].Item != 1 || got[1].Item != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestSelectKZeroAndNegative(t *testing.T) {
	if got := SelectFromScores([]float32{1, 2}, 0); got != nil {
		t.Fatalf("k=0 should return nil, got %+v", got)
	}
	if got := SelectFromScores([]float32{1, 2}, -3); got != nil {
		t.Fatalf("k<0 should return nil, got %+v", got)
	}
}

func TestSelectEmptyScores(t *testing.T) {
	if got := SelectFromScores(nil, 5); len(got) != 0 {
		t.Fatalf("empty scores should return empty, got %+v", got)
	}
}

func TestTiesBrokenByLowerItemID(t *testing.T) {
	scores := []float32{0.5, 0.5, 0.5, 0.5}
	got := SelectFromScores(scores, 2)
	if got[0].Item != 0 || got[1].Item != 1 {
		t.Fatalf("tie-break should prefer lower ids, got %+v", got)
	}
}

func TestHeapMatchesSortBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(30)
		scores := make([]float32, n)
		for i := range scores {
			scores[i] = float32(rng.NormFloat64())
		}
		heap := SelectFromScores(scores, k)
		sorted := SelectFromScoresSorted(scores, k)
		if len(heap) != len(sorted) {
			t.Fatalf("len mismatch: heap %d sort %d", len(heap), len(sorted))
		}
		for i := range heap {
			if heap[i] != sorted[i] {
				t.Fatalf("trial %d pos %d: heap %+v sort %+v", trial, i, heap[i], sorted[i])
			}
		}
	}
}

func TestTopKUsesInnerProduct(t *testing.T) {
	// Three items in 2-D; the query points along item 2's direction.
	items := tensor.FromSlice([]float32{
		1, 0,
		0, 1,
		2, 2,
	}, 3, 2)
	query := tensor.FromSlice([]float32{1, 1}, 2)
	got := TopK(items, query, 2)
	if got[0].Item != 2 || got[0].Score != 4 {
		t.Fatalf("best item = %+v, want item 2 score 4", got[0])
	}
	if got[1].Score != 1 {
		t.Fatalf("second score = %v, want 1", got[1].Score)
	}
}

func TestShardedMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c, d, k := 337, 8, 10
	items := tensor.New(c, d)
	for i := range items.Data() {
		items.Data()[i] = float32(rng.NormFloat64())
	}
	query := tensor.New(d)
	for i := range query.Data() {
		query.Data()[i] = float32(rng.NormFloat64())
	}
	full := TopK(items, query, k)
	for _, shardSize := range []int{1, 7, 64, 337, 1000} {
		sharded := Sharded(items, query, k, shardSize)
		if len(sharded) != len(full) {
			t.Fatalf("shardSize %d: len %d != %d", shardSize, len(sharded), len(full))
		}
		for i := range full {
			if sharded[i].Item != full[i].Item {
				t.Fatalf("shardSize %d pos %d: %+v != %+v", shardSize, i, sharded[i], full[i])
			}
		}
	}
}

func TestShardedBadShardSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for shardSize 0")
		}
	}()
	Sharded(tensor.New(4, 2), tensor.New(2), 2, 0)
}

// Property: heap selection equals sort baseline for random inputs, the
// results are in non-increasing score order, and item ids are unique.
func TestSelectProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		scores := make([]float32, n)
		for i := range scores {
			// Coarse quantisation provokes plenty of score ties.
			scores[i] = float32(rng.Intn(16))
		}
		heap := SelectFromScores(scores, k)
		sorted := SelectFromScoresSorted(scores, k)
		if len(heap) != len(sorted) {
			return false
		}
		seen := make(map[int64]bool, len(heap))
		for i := range heap {
			if heap[i] != sorted[i] {
				return false
			}
			if i > 0 && heap[i-1].Score < heap[i].Score {
				return false
			}
			if seen[heap[i].Item] {
				return false
			}
			seen[heap[i].Item] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectHeap(b *testing.B) {
	scores := benchScores(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectFromScores(scores, 21)
	}
}

func BenchmarkSelectSort(b *testing.B) {
	scores := benchScores(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectFromScoresSorted(scores, 21)
	}
}

func benchScores(n int) []float32 {
	rng := rand.New(rand.NewSource(42))
	scores := make([]float32, n)
	for i := range scores {
		scores[i] = rng.Float32()
	}
	return scores
}
