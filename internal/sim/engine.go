// Package sim is the discrete-event simulator that stands in for the
// paper's GCP/Kubernetes testbed: it drives the load-generation schedule of
// Algorithm 2 (virtual one-second ticks, time-proportional ramp-up, evenly
// spread requests, backpressure) against simulated serving instances whose
// service times come from the accelerator cost models in internal/device.
//
// A full ten-minute, 1,000 req/s end-to-end run — hours of wall time on a
// cloud — simulates in milliseconds, deterministically, which is how this
// repository regenerates Fig 4 and Table I.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a deterministic discrete-event executor over virtual time.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay (clamped to now for non-positive delays).
// Events at equal times run in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run executes events until the queue empties or virtual time would pass
// `until`. Events exactly at `until` still run.
func (e *Engine) Run(until time.Duration) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Drain executes all remaining events regardless of time.
func (e *Engine) Drain() {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
