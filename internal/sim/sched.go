package sim

import (
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sched"
	"etude/internal/trace"
)

// schedReq is one request queued through the multi-tenant scheduler.
type schedReq struct {
	sessionLen int
	arrival    time.Duration
	done       func(Outcome)
	sp         *trace.Span
}

// SchedInstance simulates one serving machine whose batcher is fronted by
// the SLO-aware multi-tenant scheduler (internal/sched): per-tenant queues
// drained by weighted deficit round robin, deadline-aware flush timing, and
// an amortisation-driven target batch size. It drives the very same
// sched.Core the live server's dispatcher runs, but on the engine's virtual
// clock — so the tenant-isolation experiment proves properties of the
// production scheduling code, deterministically.
//
// It deliberately omits the chaos/resilience surface of Instance: the
// scheduler experiments isolate scheduling effects, and keeping the mirror
// small keeps the bit-exact baselines of the existing experiments untouched.
type SchedInstance struct {
	eng  *Engine
	spec device.Spec
	jit  bool

	// costs[l] is the model's per-inference cost at session length l;
	// index 0 is unused.
	costs []model.Cost

	core *sched.Core[schedReq]

	busy bool
	// flushArmed/armedAt/gen implement a shrink-only virtual flush timer:
	// arrivals can only tighten the next flush instant (the core's bound is
	// a min over queued entries), so a pending event at a later instant is
	// invalidated by bumping gen and scheduling an earlier one.
	flushArmed bool
	armedAt    time.Duration
	gen        uint64

	busyTotal time.Duration
	flushes   int64

	tracer *trace.Tracer
}

// NewSchedInstance builds a scheduler-fronted simulated instance serving
// the named model. The scheduler config's MaxBatch (and TargetBatch) are
// capped by the accelerator's memory-bound effective batch, mirroring
// NewInstance; a TargetBatch of 0 is derived from the device cost model's
// amortisation curve via sched.AmortizedBatch.
func NewSchedInstance(eng *Engine, spec device.Spec, name string, cfg model.Config, jit bool, scfg sched.Config) (*SchedInstance, error) {
	cfg = normalizeConfig(cfg)
	costs := make([]model.Cost, cfg.MaxSessionLen+1)
	for l := 1; l <= cfg.MaxSessionLen; l++ {
		c, err := model.EstimateCost(name, cfg, l)
		if err != nil {
			return nil, err
		}
		costs[l] = c
	}
	eff := spec.EffectiveMaxBatch(costs[1])
	if eff < 1 {
		eff = 1
	}
	if scfg.MaxBatch < 1 || scfg.MaxBatch > eff {
		scfg.MaxBatch = eff
	}
	if scfg.TargetBatch <= 0 {
		scfg.TargetBatch = sched.AmortizedBatch(spec, costs[1], jit, 0)
	}
	if scfg.TargetBatch > scfg.MaxBatch {
		scfg.TargetBatch = scfg.MaxBatch
	}
	if scfg.FlushEvery <= 0 {
		scfg.FlushEvery = 2 * time.Millisecond
	}
	core, err := sched.NewCore[schedReq](scfg)
	if err != nil {
		return nil, err
	}
	return &SchedInstance{
		eng:   eng,
		spec:  spec,
		jit:   jit,
		costs: costs,
		core:  core,
	}, nil
}

// SetTracer attaches a stage tracer; build it with the engine's virtual
// clock (trace.New(trace.Options{Clock: eng.Now})) so spans measure
// simulated time.
func (in *SchedInstance) SetTracer(t *trace.Tracer) { in.tracer = t }

// Submit enqueues a request under its tenant. budget is the request's
// deadline budget (the X-Deadline header; 0 = none): if its queue sojourn
// consumes it, the request is dropped at assembly with ErrDeadlineExpired
// instead of occupying the accelerator. A full tenant queue refuses with
// ErrShed. done fires exactly once.
func (in *SchedInstance) Submit(tenant string, sessionLen int, budget time.Duration, done func(Outcome)) {
	arrival := in.eng.Now()
	var deadline time.Duration
	if budget > 0 {
		deadline = arrival + budget
	}
	req := schedReq{sessionLen: sessionLen, arrival: arrival, done: done}
	req.sp = in.tracer.Start("")
	if err := in.core.Enqueue(arrival, tenant, deadline, req); err != nil {
		req.sp.Discard()
		done(Outcome{Err: ErrShed})
		return
	}
	in.pump()
}

// pump advances batch formation: flush immediately when the core is ready
// (amortisation target reached or flush instant arrived), otherwise make
// sure a virtual timer is armed at the core's next flush bound.
func (in *SchedInstance) pump() {
	if in.busy {
		return // completion re-pumps
	}
	now := in.eng.Now()
	for in.core.Ready(now) {
		in.startBatch()
		if in.busy {
			return
		}
	}
	at, ok := in.core.NextFlushAt()
	if !ok {
		return
	}
	in.arm(at)
}

// arm schedules the flush event at the given virtual instant unless an
// earlier (or equal) one is already pending. Later pending events are
// superseded via the generation counter — the bound only shrinks.
func (in *SchedInstance) arm(at time.Duration) {
	if in.flushArmed && in.armedAt <= at {
		return
	}
	in.gen++
	g := in.gen
	in.flushArmed = true
	in.armedAt = at
	in.eng.Schedule(at-in.eng.Now(), func() {
		if g != in.gen {
			return // superseded by an earlier arm or a flush
		}
		in.flushArmed = false
		in.pump()
	})
}

// startBatch assembles one WDRR batch at virtual `now`, answers expired
// entries, and schedules the batch's service completion.
func (in *SchedInstance) startBatch() {
	now := in.eng.Now()
	in.gen++ // invalidate any pending flush event; pump re-arms after
	in.flushArmed = false
	batch, expired := in.core.Assemble(now)
	for _, r := range expired {
		r.sp.Discard()
		r.done(Outcome{Latency: now - r.arrival, Err: ErrDeadlineExpired})
	}
	n := len(batch)
	if n == 0 {
		return
	}
	in.busy = true
	in.flushes++
	in.tracer.ObserveBatchFlush(n)
	totalLen := 0
	for _, r := range batch {
		r.sp.Observe(trace.StageSchedWait, now-r.arrival)
		r.sp.SetBatchSize(n)
		totalLen += r.sessionLen
	}

	// The batch's service time uses the mean session length of its
	// requests, exactly as Instance does: the encoder runs per request, the
	// shared catalog scan dominates.
	meanLen := totalLen / n
	if meanLen < 1 {
		meanLen = 1
	}
	cost := in.costFor(meanLen)
	enc, mips := splitService(cost, in.spec.BatchInference(cost, n, in.jit))
	service := enc + mips
	in.busyTotal += service
	in.eng.Schedule(service, func() {
		in.busy = false
		for _, r := range batch {
			r.sp.Observe(trace.StageEncoderForward, enc)
			r.sp.Observe(trace.StageMIPSTopK, mips)
			total := in.eng.Now() - r.arrival
			r.sp.FinishTotal(total)
			r.done(Outcome{Latency: total})
		}
		in.pump()
	})
}

func (in *SchedInstance) costFor(sessionLen int) model.Cost {
	if sessionLen < 1 {
		sessionLen = 1
	}
	if sessionLen >= len(in.costs) {
		sessionLen = len(in.costs) - 1
	}
	return in.costs[sessionLen]
}

// Stats snapshots every tenant's scheduling counters.
func (in *SchedInstance) Stats() []sched.TenantStats { return in.core.Stats() }

// Pending returns queued entries across all tenants (excluding in-flight).
func (in *SchedInstance) Pending() int { return in.core.Pending() }

// Flushes returns how many batches have been assembled.
func (in *SchedInstance) Flushes() int64 { return in.flushes }

// BusyTime returns accumulated device-busy virtual time.
func (in *SchedInstance) BusyTime() time.Duration { return in.busyTotal }
