package sim

import (
	"errors"
	"testing"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/overload"
	"etude/internal/trace"
)

// A request whose deadline budget is consumed while queued must be dropped
// at dequeue — before the executor — so the encoder never runs for it.
func TestInstanceDeadlineExpiredDroppedAtDequeue(t *testing.T) {
	eng := NewEngine()
	in := cpuInstance(t, eng, 100_000)
	tr := trace.New(trace.Options{Clock: eng.Now})
	in.SetTracer(tr)
	service := device.CPU().ParallelInference(mustCost(t, "gru4rec", 100_000, 3), true)
	in.SetResilience(Resilience{Budget: service / 2})
	var outcomes []Outcome
	for i := 0; i < 3; i++ {
		in.SubmitOutcome(3, func(o Outcome) { outcomes = append(outcomes, o) })
	}
	eng.Drain()
	if len(outcomes) != 3 {
		t.Fatalf("completed %d/3", len(outcomes))
	}
	// The first request starts service at sojourn zero; the two behind it
	// wait a full service time, past the half-service budget.
	if outcomes[0].Err != nil {
		t.Fatalf("head request failed: %v", outcomes[0].Err)
	}
	for i, o := range outcomes[1:] {
		if !errors.Is(o.Err, ErrDeadlineExpired) {
			t.Fatalf("queued request %d: err = %v, want ErrDeadlineExpired", i+1, o.Err)
		}
	}
	if got := in.DeadlineExpired(); got != 2 {
		t.Fatalf("DeadlineExpired() = %d, want 2", got)
	}
	// Acceptance criterion in miniature: expired work never reached the
	// encoder stage.
	if enc := tr.StageSnapshot(trace.StageEncoderForward); enc.Count != 1 {
		t.Fatalf("encoder spans = %d, want 1 (only the served request)", enc.Count)
	}
}

// A stale GPU buffer is filtered at batch assembly: when every buffered
// request expired during the flush window, no batch launches at all.
func TestInstanceBatchFiltersExpired(t *testing.T) {
	eng := NewEngine()
	in, err := NewInstance(eng, device.GPUT4(), "gru4rec", model.Config{CatalogSize: 1_000_000, Seed: 1}, true, 2*time.Millisecond, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Clock: eng.Now})
	in.SetTracer(tr)
	in.SetResilience(Resilience{Budget: time.Millisecond}) // < 2ms flush window
	var outcomes []Outcome
	for i := 0; i < 8; i++ {
		in.SubmitOutcome(3, func(o Outcome) { outcomes = append(outcomes, o) })
	}
	eng.Drain()
	if len(outcomes) != 8 {
		t.Fatalf("completed %d/8", len(outcomes))
	}
	for i, o := range outcomes {
		if !errors.Is(o.Err, ErrDeadlineExpired) {
			t.Fatalf("request %d: err = %v, want ErrDeadlineExpired", i, o.Err)
		}
	}
	if got := in.DeadlineExpired(); got != 8 {
		t.Fatalf("DeadlineExpired() = %d, want 8", got)
	}
	if enc := tr.StageSnapshot(trace.StageEncoderForward); enc.Count != 0 {
		t.Fatalf("encoder spans = %d, want 0: the stale batch must not launch", enc.Count)
	}
	if flushes, _, _ := tr.BatchStats(); flushes != 0 {
		t.Fatalf("batch flushes = %d, want 0", flushes)
	}
}

// With a standing queue far above the CoDel target, the discipline sheds
// from the head once the excursion outlives an interval.
func TestInstanceCoDelShedsStandingQueue(t *testing.T) {
	eng := NewEngine()
	in := cpuInstance(t, eng, 100_000)
	cd := overload.NewCoDel(overload.CoDelConfig{Target: time.Microsecond, Interval: time.Microsecond}, eng.Now)
	in.SetResilience(Resilience{CoDel: cd})
	served, shed := 0, 0
	for i := 0; i < 8; i++ {
		in.SubmitOutcome(3, func(o Outcome) {
			switch {
			case o.Err == nil:
				served++
			case errors.Is(o.Err, ErrCoDelDropped):
				shed++
			default:
				t.Errorf("unexpected error: %v", o.Err)
			}
		})
	}
	eng.Drain()
	if served+shed != 8 {
		t.Fatalf("served %d + shed %d != 8", served, shed)
	}
	if shed == 0 {
		t.Fatalf("millisecond-scale sojourns above a 1µs target shed nothing")
	}
	if in.CoDelDropped() != int64(shed) {
		t.Fatalf("CoDelDropped() = %d, want %d", in.CoDelDropped(), shed)
	}
}

// The adaptive limiter refuses admission beyond its limit and releases its
// slot on every outcome, including crash-failed in-flight requests.
func TestInstanceLimiterRefusesAndReleases(t *testing.T) {
	eng := NewEngine()
	in := cpuInstance(t, eng, 100_000)
	lim := overload.NewLimiter(overload.LimiterConfig{Initial: 1, Min: 1})
	in.SetResilience(Resilience{Limiter: lim})
	var outcomes []Outcome
	record := func(o Outcome) { outcomes = append(outcomes, o) }
	in.SubmitOutcome(3, record)
	in.SubmitOutcome(3, record) // over the limit of 1: refused immediately
	if len(outcomes) != 1 || !errors.Is(outcomes[0].Err, ErrLimited) {
		t.Fatalf("second submission not refused: %+v", outcomes)
	}
	if in.Limited() != 1 {
		t.Fatalf("Limited() = %d, want 1", in.Limited())
	}
	eng.Drain()
	if len(outcomes) != 2 || outcomes[1].Err != nil {
		t.Fatalf("admitted request did not complete cleanly: %+v", outcomes)
	}
	if lim.Inflight() != 0 {
		t.Fatalf("Inflight() = %d after completion, want 0", lim.Inflight())
	}

	// Crash path: the admitted slot must be released when Crash fails the
	// in-flight request, or the limiter wedges at zero free slots.
	in.SubmitOutcome(3, record)
	if lim.Inflight() != 1 {
		t.Fatalf("Inflight() = %d after admit, want 1", lim.Inflight())
	}
	in.Crash()
	if len(outcomes) != 3 || !errors.Is(outcomes[2].Err, ErrPodDown) {
		t.Fatalf("crash did not fail the in-flight request: %+v", outcomes)
	}
	if lim.Inflight() != 0 {
		t.Fatalf("Inflight() = %d after crash, want 0", lim.Inflight())
	}
}
