package sim

import (
	"testing"
	"time"

	"etude/internal/device"
	"etude/internal/model"
)

// TestInstanceHotSwap mirrors the live server's invariant: a version swap
// never stalls the executor — requests in flight across the swap complete,
// and the version pointer flips only once the (virtual) load time elapses.
func TestInstanceHotSwap(t *testing.T) {
	eng := NewEngine()
	in, err := NewInstance(eng, device.CPU(), "gru4rec", model.Config{CatalogSize: 100_000, Seed: 1}, true, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.SetVersion(1)
	if in.Version() != 1 {
		t.Fatalf("Version = %d, want 1", in.Version())
	}

	// A steady trickle of requests spanning the swap window.
	completed := 0
	for i := 0; i < 20; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() {
			in.SubmitOutcome(3, func(o Outcome) {
				if o.Err != nil {
					t.Errorf("request failed across hot-swap: %v", o.Err)
				}
				completed++
			})
		})
	}
	// The swap is issued at t=0 with a 10ms load: pods keep serving v1
	// while v2 loads in the background.
	in.HotSwap(2, 10*time.Millisecond)

	eng.Run(5 * time.Millisecond)
	if in.Version() != 1 {
		t.Fatalf("version flipped to %d before load finished", in.Version())
	}
	eng.Drain()
	if in.Version() != 2 {
		t.Fatalf("Version after swap = %d, want 2", in.Version())
	}
	if in.Swaps() != 1 {
		t.Fatalf("Swaps = %d, want 1", in.Swaps())
	}
	if completed != 20 {
		t.Fatalf("completed %d/20 requests across the swap", completed)
	}
}

// TestInstanceHotSwapOnDownPod: a crashed pod loads nothing — its restart
// re-reads CURRENT, so a swap landing mid-outage must not apply.
func TestInstanceHotSwapOnDownPod(t *testing.T) {
	eng := NewEngine()
	in, err := NewInstance(eng, device.CPU(), "gru4rec", model.Config{CatalogSize: 100_000, Seed: 1}, true, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.SetVersion(1)
	in.HotSwap(2, 10*time.Millisecond)
	eng.Schedule(5*time.Millisecond, in.Crash)
	eng.Drain()
	if in.Version() != 1 {
		t.Fatalf("down pod swapped to v%d", in.Version())
	}
	if in.Swaps() != 0 {
		t.Fatalf("Swaps = %d, want 0", in.Swaps())
	}

	// Re-issuing the swap after restart applies it; swapping to the
	// version already served is a no-op.
	in.Restart()
	in.HotSwap(2, time.Millisecond)
	in.HotSwap(2, 2*time.Millisecond)
	eng.Drain()
	if in.Version() != 2 || in.Swaps() != 1 {
		t.Fatalf("Version=%d Swaps=%d after restart swap, want 2/1", in.Version(), in.Swaps())
	}
}
