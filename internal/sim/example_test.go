package sim_test

import (
	"fmt"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sim"
)

// Simulate a paper-style end-to-end run in virtual time: a 60-second ramp
// to 500 req/s against one T4 serving SASRec at a million-item catalog.
func Example() {
	eng := sim.NewEngine()
	in, err := sim.NewInstance(eng, device.GPUT4(), "sasrec",
		model.Config{CatalogSize: 1_000_000, Seed: 1}, true, 2*time.Millisecond, 1024)
	if err != nil {
		panic(err)
	}
	res, err := sim.RunBenchmark(eng, sim.LoadConfig{
		TargetRate: 500,
		Duration:   60 * time.Second,
		Seed:       1,
	}, []*sim.Instance{in})
	if err != nil {
		panic(err)
	}
	fmt.Println("errors:", res.Recorder.Errors())
	fmt.Println("meets 50ms p90:", res.Meets(50*time.Millisecond))
	// Output:
	// errors: 0
	// meets 50ms p90: true
}
