package sim

import (
	"testing"
	"time"

	"etude/internal/costmodel"
	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/trace"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	eng.Schedule(time.Millisecond, func() { order = append(order, 1) })
	eng.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	eng.Run(10 * time.Millisecond)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v", eng.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		eng.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	eng.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Schedule(5*time.Millisecond, func() { fired = true })
	eng.Run(3 * time.Millisecond)
	if fired {
		t.Fatalf("event beyond horizon fired")
	}
	eng.Run(5 * time.Millisecond)
	if !fired {
		t.Fatalf("event at horizon must fire")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			eng.Schedule(time.Millisecond, tick)
		}
	}
	eng.Schedule(0, tick)
	eng.Drain()
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if eng.Now() != 9*time.Millisecond {
		t.Fatalf("Now = %v", eng.Now())
	}
}

func cpuInstance(t *testing.T, eng *Engine, catalog int) *Instance {
	t.Helper()
	in, err := NewInstance(eng, device.CPU(), "gru4rec", model.Config{CatalogSize: catalog, Seed: 1}, true, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCPUInstanceSingleRequest(t *testing.T) {
	eng := NewEngine()
	in := cpuInstance(t, eng, 100_000)
	var lat time.Duration
	in.Submit(3, func(l time.Duration) { lat = l })
	eng.Drain()
	want := device.CPU().ParallelInference(mustCost(t, "gru4rec", 100_000, 3), true)
	if lat != want {
		t.Fatalf("latency %v != service %v", lat, want)
	}
}

func TestCPUInstanceQueues(t *testing.T) {
	eng := NewEngine()
	in := cpuInstance(t, eng, 100_000)
	var lats []time.Duration
	for i := 0; i < 3; i++ {
		in.Submit(3, func(l time.Duration) { lats = append(lats, l) })
	}
	eng.Drain()
	if len(lats) != 3 {
		t.Fatalf("completed %d/3", len(lats))
	}
	// Single executor: the i-th request waits for i earlier ones.
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		t.Fatalf("queueing not serialised: %v", lats)
	}
}

func TestGPUInstanceBatchesWithinWindow(t *testing.T) {
	eng := NewEngine()
	in, err := NewInstance(eng, device.GPUT4(), "gru4rec", model.Config{CatalogSize: 1_000_000, Seed: 1}, true, 2*time.Millisecond, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var lats []time.Duration
	// 10 requests arrive together: they must ride one batch.
	for i := 0; i < 10; i++ {
		in.Submit(3, func(l time.Duration) { lats = append(lats, l) })
	}
	eng.Drain()
	if len(lats) != 10 {
		t.Fatalf("completed %d/10", len(lats))
	}
	batched := device.GPUT4().BatchInference(mustCost(t, "gru4rec", 1_000_000, 3), 10, true)
	want := 2*time.Millisecond + batched
	for _, l := range lats {
		if l != want {
			t.Fatalf("latency %v, want flush wait + batch service = %v", l, want)
		}
	}
}

func TestGPUInstanceFullBufferFlushesImmediately(t *testing.T) {
	eng := NewEngine()
	in, err := NewInstance(eng, device.GPUT4(), "core", model.Config{CatalogSize: 10_000, Seed: 1}, true, 50*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	var first time.Duration
	for i := 0; i < 4; i++ {
		in.Submit(2, func(l time.Duration) {
			if first == 0 {
				first = l
			}
		})
	}
	eng.Drain()
	if first >= 50*time.Millisecond {
		t.Fatalf("full buffer waited for the timer: %v", first)
	}
}

func mustCost(t *testing.T, name string, catalog, l int) model.Cost {
	t.Helper()
	c, err := model.EstimateCost(name, model.Config{CatalogSize: catalog, Seed: 1}, l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunBenchmarkLowLoadCleans(t *testing.T) {
	eng := NewEngine()
	in := cpuInstance(t, eng, 100_000)
	res, err := RunBenchmark(eng, LoadConfig{TargetRate: 50, Duration: 10 * time.Second, Seed: 1}, []*Instance{in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatalf("nothing sent")
	}
	if res.Recorder.Errors() != 0 || res.Backpressured != 0 {
		t.Fatalf("low load should be clean: errors=%d bp=%d", res.Recorder.Errors(), res.Backpressured)
	}
	if !res.Meets(costmodel.LatencySLO) {
		t.Fatalf("50 req/s at C=1e5 on CPU must meet the SLO: %v", res.Recorder.Overall())
	}
}

func TestRunBenchmarkOverloadBackpressures(t *testing.T) {
	eng := NewEngine()
	// CPU at C=1e6 manages ~150-200 req/s; offer 1,500.
	in := cpuInstance(t, eng, 1_000_000)
	res, err := RunBenchmark(eng, LoadConfig{TargetRate: 1500, Duration: 10 * time.Second, NoRamp: true, Seed: 1}, []*Instance{in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backpressured == 0 {
		t.Fatalf("overload produced no backpressure")
	}
	if res.Meets(costmodel.LatencySLO) {
		t.Fatalf("overloaded run must not meet the SLO")
	}
}

func TestRunBenchmarkRampGrows(t *testing.T) {
	eng := NewEngine()
	in := cpuInstance(t, eng, 10_000)
	res, err := RunBenchmark(eng, LoadConfig{TargetRate: 100, Duration: 10 * time.Second, Seed: 1}, []*Instance{in})
	if err != nil {
		t.Fatal(err)
	}
	series := res.Recorder.Series()
	if series[0].Sent >= series[len(series)-1].Sent {
		t.Fatalf("no ramp: first tick %d, last tick %d", series[0].Sent, series[len(series)-1].Sent)
	}
}

func TestFleetSharesLoad(t *testing.T) {
	// One CPU instance saturates at C=1e6 under 400 req/s; three share it.
	single := func(n int) *RunResult {
		eng := NewEngine()
		fleet := make([]*Instance, n)
		for i := range fleet {
			fleet[i] = cpuInstance(t, eng, 1_000_000)
		}
		res, err := RunBenchmark(eng, LoadConfig{TargetRate: 400, Duration: 15 * time.Second, NoRamp: true, Seed: 1}, fleet)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if single(1).Meets(costmodel.LatencySLO) {
		t.Fatalf("one CPU instance must fail 400 req/s at C=1e6")
	}
	if !single(3).Meets(costmodel.LatencySLO) {
		t.Fatalf("three CPU instances must handle 400 req/s at C=1e6")
	}
}

func TestRunBenchmarkValidation(t *testing.T) {
	eng := NewEngine()
	if _, err := RunBenchmark(eng, LoadConfig{TargetRate: 0, Duration: time.Second}, nil); err == nil {
		t.Fatalf("zero rate accepted")
	}
	in := cpuInstance(t, eng, 1000)
	if _, err := RunBenchmark(eng, LoadConfig{TargetRate: 10, Duration: 0}, []*Instance{in}); err == nil {
		t.Fatalf("zero duration accepted")
	}
	if _, err := RunBenchmark(eng, LoadConfig{TargetRate: 10, Duration: time.Second}, nil); err == nil {
		t.Fatalf("empty fleet accepted")
	}
}

func TestCapacityOrdering(t *testing.T) {
	cfg := model.Config{CatalogSize: 1_000_000, Seed: 1}
	cpu, err := Capacity(device.CPU(), "gru4rec", cfg, true, costmodel.LatencySLO)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Capacity(device.GPUT4(), "gru4rec", cfg, true, costmodel.LatencySLO)
	if err != nil {
		t.Fatal(err)
	}
	a100, err := Capacity(device.GPUA100(), "gru4rec", cfg, true, costmodel.LatencySLO)
	if err != nil {
		t.Fatal(err)
	}
	if !(cpu < t4 && t4 <= a100) {
		t.Fatalf("capacity ordering broken: cpu=%.0f t4=%.0f a100=%.0f", cpu, t4, a100)
	}
	// Paper: "the T4 card already handles more than 700 requests per second
	// at a 50ms p90 latency" for C=1e6.
	if t4 < 700 {
		t.Fatalf("T4 capacity at C=1e6 = %.0f, want > 700", t4)
	}
}

func TestCapacityT4FailsPlatform(t *testing.T) {
	cfg := model.Config{CatalogSize: 20_000_000, Seed: 1}
	t4, err := Capacity(device.GPUT4(), "gru4rec", cfg, true, costmodel.LatencySLO)
	if err != nil {
		t.Fatal(err)
	}
	a100, err := Capacity(device.GPUA100(), "gru4rec", cfg, true, costmodel.LatencySLO)
	if err != nil {
		t.Fatal(err)
	}
	// Table I platform row: T4 absent, 3×A100 suffice for 1,000 req/s.
	if t4 > 50 {
		t.Fatalf("T4 at C=2e7 should be (near) infeasible, got %.0f req/s", t4)
	}
	if a100 < 334 {
		t.Fatalf("A100 at C=2e7 must sustain ≥334 req/s, got %.0f", a100)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *RunResult {
		eng := NewEngine()
		in := cpuInstance(t, eng, 100_000)
		res, err := RunBenchmark(eng, LoadConfig{TargetRate: 200, Duration: 5 * time.Second, Seed: 7}, []*Instance{in})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Sent != b.Sent || a.Backpressured != b.Backpressured ||
		a.Recorder.Overall() != b.Recorder.Overall() {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a.Recorder.Overall(), b.Recorder.Overall())
	}
}

// TestInstanceTracingVirtualTime: an instance with a tracer on the engine's
// virtual clock records stage spans in simulated time — the GPU path gets
// batch-assembly + encoder/mips splits that sum to the end-to-end latency.
func TestInstanceTracingVirtualTime(t *testing.T) {
	eng := NewEngine()
	in, err := NewInstance(eng, device.GPUT4(), "gru4rec", model.Config{CatalogSize: 1_000_000, Seed: 1}, true, 2*time.Millisecond, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Clock: eng.Now})
	in.SetTracer(tr)
	var lats []time.Duration
	for i := 0; i < 10; i++ {
		in.Submit(3, func(l time.Duration) { lats = append(lats, l) })
	}
	eng.Drain()
	if len(lats) != 10 {
		t.Fatalf("completed %d/10", len(lats))
	}
	total := tr.TotalSnapshot()
	if total.Count != 10 {
		t.Fatalf("traced %d requests, want 10", total.Count)
	}
	// Virtual clock: the recorded e2e max equals the simulated latency.
	if total.Max != lats[0] {
		t.Fatalf("traced total %v != simulated latency %v", total.Max, lats[0])
	}
	asm := tr.StageSnapshot(trace.StageBatchAssembly)
	enc := tr.StageSnapshot(trace.StageEncoderForward)
	mips := tr.StageSnapshot(trace.StageMIPSTopK)
	if asm.Count != 10 || enc.Count != 10 {
		t.Fatalf("stage counts: assembly %d encoder %d", asm.Count, enc.Count)
	}
	// All requests arrived at t=0, so assembly is the 2ms flush window and
	// assembly + encoder + mips reconstructs the end-to-end latency exactly.
	if asm.Max != 2*time.Millisecond {
		t.Fatalf("batch-assembly %v, want the 2ms flush window", asm.Max)
	}
	if got := asm.Max + enc.Max + mips.Max; got != lats[0] {
		t.Fatalf("stage sum %v != latency %v", got, lats[0])
	}
	flushes, mean, max := tr.BatchStats()
	if flushes != 1 || mean != 10 || max != 10 {
		t.Fatalf("batch stats = %d flushes mean %v max %d", flushes, mean, max)
	}
}

// TestInstanceTracingCPUQueueWait: the CPU path attributes head-of-line
// blocking to queue-wait in virtual time.
func TestInstanceTracingCPUQueueWait(t *testing.T) {
	eng := NewEngine()
	in := cpuInstance(t, eng, 100_000)
	tr := trace.New(trace.Options{Clock: eng.Now})
	in.SetTracer(tr)
	done := 0
	for i := 0; i < 3; i++ {
		in.Submit(3, func(time.Duration) { done++ })
	}
	eng.Drain()
	if done != 3 {
		t.Fatalf("completed %d/3", done)
	}
	service := device.CPU().ParallelInference(mustCost(t, "gru4rec", 100_000, 3), true)
	// The first request starts service instantly (zero wait is not recorded);
	// the two behind it queue.
	qw := tr.StageSnapshot(trace.StageQueueWait)
	if qw.Count != 2 {
		t.Fatalf("queue-wait count %d, want 2", qw.Count)
	}
	// The third request waited exactly two service times.
	if qw.Max != 2*service {
		t.Fatalf("queue-wait max %v, want %v", qw.Max, 2*service)
	}
	enc := tr.StageSnapshot(trace.StageEncoderForward)
	mips := tr.StageSnapshot(trace.StageMIPSTopK)
	if enc.Count != 3 || mips.Count != 3 {
		t.Fatalf("stage counts: encoder %d mips %d", enc.Count, mips.Count)
	}
	// The FLOP-proportional split conserves the service time.
	if got := enc.Max + mips.Max; got != service {
		t.Fatalf("encoder+mips %v != service %v", got, service)
	}
}
