package sim

import (
	"testing"
	"testing/quick"
	"time"

	"etude/internal/device"
	"etude/internal/model"
)

// TestConservationProperty: over any run, every sent request completes
// (as a latency observation or a timeout) once the engine drains, and
// planned = sent + backpressured.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, rateRaw, catRaw uint8) bool {
		rate := float64(rateRaw%200) + 10
		catalog := (int(catRaw%20) + 1) * 10_000
		eng := NewEngine()
		in, err := NewInstance(eng, device.CPU(), "core", model.Config{CatalogSize: catalog, Seed: 1}, true, 0, 1)
		if err != nil {
			return false
		}
		res, err := RunBenchmark(eng, LoadConfig{
			TargetRate: rate,
			Duration:   5 * time.Second,
			Seed:       seed,
		}, []*Instance{in})
		if err != nil {
			return false
		}
		completed := res.Recorder.Overall().Count + res.Recorder.Errors()
		if completed != res.Sent {
			t.Logf("completed %d != sent %d", completed, res.Sent)
			return false
		}
		if res.Sent+res.Backpressured != res.Planned {
			t.Logf("sent %d + shed %d != planned %d", res.Sent, res.Backpressured, res.Planned)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGPUConservationProperty: same conservation law through the batcher.
func TestGPUConservationProperty(t *testing.T) {
	f := func(seed int64, rateRaw uint8) bool {
		rate := float64(rateRaw)*2 + 50
		eng := NewEngine()
		in, err := NewInstance(eng, device.GPUT4(), "stamp", model.Config{CatalogSize: 500_000, Seed: 1}, true, 2*time.Millisecond, 1024)
		if err != nil {
			return false
		}
		res, err := RunBenchmark(eng, LoadConfig{
			TargetRate: rate,
			Duration:   5 * time.Second,
			Seed:       seed,
		}, []*Instance{in})
		if err != nil {
			return false
		}
		completed := res.Recorder.Overall().Count + res.Recorder.Errors()
		return completed == res.Sent && res.Sent+res.Backpressured == res.Planned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualTimeMonotone: event callbacks always observe non-decreasing
// Now().
func TestVirtualTimeMonotone(t *testing.T) {
	eng := NewEngine()
	last := time.Duration(-1)
	ok := true
	for i := 0; i < 100; i++ {
		delay := time.Duration((i*37)%50) * time.Millisecond
		eng.Schedule(delay, func() {
			if eng.Now() < last {
				ok = false
			}
			last = eng.Now()
		})
	}
	eng.Drain()
	if !ok {
		t.Fatalf("virtual time went backwards")
	}
}

// TestBatchNeverExceedsEffectiveMax: even under a flood, no batch larger
// than the memory-capped maximum is launched.
func TestBatchNeverExceedsEffectiveMax(t *testing.T) {
	eng := NewEngine()
	in, err := NewInstance(eng, device.GPUT4(), "core", model.Config{CatalogSize: 10_000, Seed: 1}, true, time.Millisecond, 16)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 200; i++ {
		in.Submit(2, func(time.Duration) { done++ })
	}
	// The instance processes in waves; the buffer high-water mark minus
	// completed implies batch sizes. We can't observe batches directly, so
	// assert all complete and the configured cap held (panic-free) plus
	// total conservation.
	eng.Drain()
	if done != 200 {
		t.Fatalf("completed %d/200", done)
	}
}

// TestInstancePendingCounts: Pending reflects buffered work before drain.
func TestInstancePending(t *testing.T) {
	eng := NewEngine()
	in, err := NewInstance(eng, device.CPU(), "core", model.Config{CatalogSize: 10_000, Seed: 1}, true, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		in.Submit(2, func(time.Duration) {})
	}
	if p := in.Pending(); p != 5 {
		t.Fatalf("pending = %d, want 5 (4 queued + 1 in service)", p)
	}
	eng.Drain()
	if p := in.Pending(); p != 0 {
		t.Fatalf("pending after drain = %d", p)
	}
}
