package sim

import (
	"errors"
	"fmt"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/overload"
	"etude/internal/trace"
)

// Fault outcomes a simulated instance can report for a request. They mirror
// what a real client observes: a connection reset when the pod dies, and an
// immediate refusal when admission control sheds the request.
var (
	// ErrPodDown is returned for requests routed to (or in flight on) a
	// crashed pod.
	ErrPodDown = errors.New("sim: pod down")
	// ErrShed is returned when the instance's bounded queue is full and the
	// request is refused instead of enqueued.
	ErrShed = errors.New("sim: request shed (queue full)")
	// ErrLimited is returned when the adaptive concurrency limiter refuses
	// admission — the sim analogue of the server's 429 "adaptive limit"
	// response; refused before any queueing, so retryable.
	ErrLimited = errors.New("sim: request shed (adaptive concurrency limit)")
	// ErrDeadlineExpired is returned for a request whose queue sojourn
	// consumed its whole deadline budget: dropped at dequeue, before the
	// executor, mirroring the server's 504 deadline-exceeded-in-queue. The
	// budget is gone, so it is never retried.
	ErrDeadlineExpired = errors.New("sim: deadline expired in queue")
	// ErrCoDelDropped is returned for a request shed at dequeue by the CoDel
	// queue discipline (standing queue above target); the client still has
	// budget, so it is retryable like ErrShed.
	ErrCoDelDropped = errors.New("sim: request shed (CoDel queue discipline)")
)

// Outcome describes one completed simulated request.
type Outcome struct {
	// Latency is the end-to-end virtual time from submission to completion
	// (for failed requests: until the failure was observed).
	Latency time.Duration
	// Err is non-nil when the request failed (ErrPodDown, ErrShed).
	Err error
	// Degraded marks a response served by the cheap fallback responder
	// instead of the model.
	Degraded bool
	// Partial marks a sharded response merged from a strict subset of shard
	// groups (the sim mirror of X-Degraded: partial).
	Partial bool
	// Coverage is the fraction of shard groups that contributed to a
	// sharded response (1 for full coverage, 0 when the submitter does not
	// report coverage).
	Coverage float64
}

// Resilience configures the server-side resilience mechanisms of a simulated
// instance. The zero value reproduces the original unbounded happy-path
// behaviour.
type Resilience struct {
	// MaxQueue bounds requests waiting or in service; submissions beyond it
	// are refused with ErrShed (admission control). 0 = unbounded.
	MaxQueue int
	// DegradeAt is the pending-request watermark at which new requests are
	// answered by the cheap popularity-style fallback responder instead of
	// the model (graceful degradation). 0 disables degradation.
	DegradeAt int
	// DegradeCost is the service time of the fallback responder (default
	// 200µs — a precomputed list lookup, no model execution).
	DegradeCost time.Duration
	// Budget is the per-request deadline budget (the sim mirror of the
	// X-Deadline header): a request whose queue sojourn reaches it is
	// dropped at dequeue with ErrDeadlineExpired instead of occupying the
	// executor with work nobody is waiting for. 0 disables.
	Budget time.Duration
	// CoDel, when non-nil, sheds from the head of the queue whenever the
	// minimum sojourn has exceeded the CoDel target for a full interval.
	// Build it with overload.NewCoDel(cfg, eng.Now) so its interval
	// tracking runs in virtual time; a wall-clock CoDel would break
	// determinism.
	CoDel *overload.CoDel
	// Limiter, when non-nil, is the AIMD adaptive concurrency limiter
	// consulted at admission (after the MaxQueue backstop). Completions
	// feed it observed virtual latencies; failed outcomes count as drops.
	Limiter *overload.Limiter
}

func (r Resilience) withDefaults() Resilience {
	if r.DegradeCost <= 0 {
		r.DegradeCost = 200 * time.Microsecond
	}
	return r
}

// Request is one simulated recommendation request.
type Request struct {
	// SessionLen is the click-history length, which sets the encoder cost.
	SessionLen int
	// arrival is the virtual submission time.
	arrival time.Duration
	// done receives the request outcome when it completes or fails.
	done func(Outcome)
	// sp is the request's trace span (nil when tracing is off or the
	// request never reached the executor).
	sp *trace.Span
}

// Instance simulates one serving machine: a device (CPU or GPU), a deployed
// model (represented by its per-session-length cost table), optional JIT
// execution, and — on GPUs — the 2ms/1024 request batcher. Fault injection
// (internal/chaos) can crash/restart it and dilate its service times;
// Resilience bounds its queue and enables graceful degradation.
type Instance struct {
	eng  *Engine
	spec device.Spec
	jit  bool

	// costs[l] is the model's per-inference cost at session length l;
	// index 0 is unused.
	costs []model.Cost

	// Batching state (GPU).
	maxBatch   int
	flushEvery time.Duration
	buffer     []Request
	flushArmed bool

	// Service state.
	busy  bool
	queue []Request // CPU FIFO
	// busyTotal accumulates device-busy virtual time (service durations),
	// the utilisation signal consumed by the autoscaler.
	busyTotal time.Duration

	// version is the model release the instance serves (0 when the
	// deployment predates versioned releases). HotSwap flips it.
	version int
	// swaps counts completed hot-swaps.
	swaps int64

	// Fault state (driven by the chaos injector).
	down     bool
	slowdown float64 // service-time multiplier; 1 = healthy
	// inflate multiplies the service-time component attributed to one
	// compute stage (encoder-forward or mips-topk). Nil when unused.
	inflate map[trace.Stage]float64
	epoch    uint64  // bumped on every crash; stale completions are dropped
	inflight []Request

	res Resilience

	// Overload-control counters (the sim runs single-threaded inside the
	// event loop, so plain ints suffice).
	deadlineExpired int64
	codelDropped    int64
	limited         int64

	// tracer, when set, records per-stage spans in virtual time. It must be
	// built with the engine's clock (see SetTracer).
	tracer *trace.Tracer
}

// NewInstance builds a simulated instance serving the named model.
// flushEvery and maxBatch configure the batcher (paper defaults: 2ms, 1024,
// further capped by accelerator memory); they are ignored on CPU instances.
func NewInstance(eng *Engine, spec device.Spec, name string, cfg model.Config, jit bool, flushEvery time.Duration, maxBatch int) (*Instance, error) {
	cfg = normalizeConfig(cfg)
	costs := make([]model.Cost, cfg.MaxSessionLen+1)
	for l := 1; l <= cfg.MaxSessionLen; l++ {
		c, err := model.EstimateCost(name, cfg, l)
		if err != nil {
			return nil, err
		}
		costs[l] = c
	}
	return NewInstanceFromCosts(eng, spec, costs, jit, flushEvery, maxBatch)
}

// NewInstanceFromCosts builds an instance directly from a per-session-
// length cost table: costs[l] is the per-inference cost at session length
// l, index 0 unused. This is the entry point for workers whose cost is not
// a registered model's whole inference — the sharded retrieval tier
// (internal/shard) builds per-shard workers by slicing a model's cost
// table, so each worker's service time is its shard's share of the catalog
// scan.
func NewInstanceFromCosts(eng *Engine, spec device.Spec, costs []model.Cost, jit bool, flushEvery time.Duration, maxBatch int) (*Instance, error) {
	if len(costs) < 2 {
		return nil, fmt.Errorf("sim: cost table must cover at least session length 1, got %d entries", len(costs))
	}
	eff := spec.EffectiveMaxBatch(costs[1])
	if eff > maxBatch {
		eff = maxBatch
	}
	if flushEvery <= 0 {
		flushEvery = 2 * time.Millisecond
	}
	return &Instance{
		eng:        eng,
		spec:       spec,
		jit:        jit,
		costs:      costs,
		maxBatch:   eff,
		flushEvery: flushEvery,
		slowdown:   1,
	}, nil
}

func normalizeConfig(cfg model.Config) model.Config {
	if cfg.MaxSessionLen == 0 {
		cfg.MaxSessionLen = 50
	}
	return cfg
}

// SetResilience configures admission control and graceful degradation.
func (in *Instance) SetResilience(r Resilience) { in.res = r.withDefaults() }

// SetTracer attaches a stage tracer. Pass a tracer built with the engine's
// virtual clock — trace.New(trace.Options{Clock: eng.Now}) — so spans measure
// simulated time, not wall time. A nil tracer turns tracing back off.
func (in *Instance) SetTracer(t *trace.Tracer) { in.tracer = t }

// splitService attributes a (virtual) service duration to the encoder-forward
// and mips-topk stages proportionally to the model's FLOP breakdown — the
// same decomposition the cost model itself uses.
func splitService(c model.Cost, service time.Duration) (enc, mips time.Duration) {
	total := c.EncoderFLOPs + c.MIPSFLOPs + c.TopKOps
	if total <= 0 {
		return service, 0
	}
	enc = time.Duration(float64(service) * c.EncoderFLOPs / total)
	return enc, service - enc
}

// InflateStage multiplies the simulated service time attributed to one
// compute stage by factor — a controlled, attributable slowdown. Only
// StageEncoderForward and StageMIPSTopK carry simulated compute, so only
// those have an effect. The regression-gate test suite uses this to prove
// the gate not only detects an injected latency regression but names the
// stage that caused it. Factor ≤ 0 or 1 removes the inflation.
func (in *Instance) InflateStage(st trace.Stage, factor float64) {
	if factor <= 0 || factor == 1 {
		delete(in.inflate, st)
		return
	}
	if in.inflate == nil {
		in.inflate = make(map[trace.Stage]float64)
	}
	in.inflate[st] = factor
}

// serviceSplit computes the encoder/MIPS decomposition of a service
// duration with any configured stage inflation applied, returning the
// components and the (possibly lengthened) total to schedule.
func (in *Instance) serviceSplit(c model.Cost, service time.Duration) (enc, mips, total time.Duration) {
	enc, mips = splitService(c, service)
	if f, ok := in.inflate[trace.StageEncoderForward]; ok {
		enc = time.Duration(float64(enc) * f)
	}
	if f, ok := in.inflate[trace.StageMIPSTopK]; ok {
		mips = time.Duration(float64(mips) * f)
	}
	return enc, mips, enc + mips
}

// Fits reports whether the model fits the instance at all (GPU memory).
func (in *Instance) Fits() bool {
	return in.spec.Kind == device.KindCPU || in.maxBatch > 0
}

// Up reports whether the instance is serving (false after Crash until
// Restart) — the readiness-probe signal for health-aware balancing.
func (in *Instance) Up() bool { return !in.down }

// Crash takes the instance down, failing every queued, buffered and
// in-flight request with ErrPodDown (a dying pod resets its connections).
// Subsequent submissions fail immediately until Restart.
func (in *Instance) Crash() {
	if in.down {
		return
	}
	in.down = true
	in.epoch++ // invalidate scheduled completions
	in.busy = false
	in.flushArmed = false
	now := in.eng.Now()
	failed := make([]Request, 0, len(in.queue)+len(in.buffer)+len(in.inflight))
	failed = append(failed, in.inflight...)
	failed = append(failed, in.queue...)
	failed = append(failed, in.buffer...)
	in.inflight, in.queue, in.buffer = nil, nil, nil
	for _, r := range failed {
		r.sp.Discard()
		r.done(Outcome{Latency: now - r.arrival, Err: ErrPodDown})
	}
}

// Restart brings a crashed instance back up with an empty queue (the
// restarted pod passed its readiness probe).
func (in *Instance) Restart() { in.down = false }

// Version returns the model release the instance currently serves — the
// sim mirror of the live server's etude_model_version gauge.
func (in *Instance) Version() int { return in.version }

// Swaps returns how many hot-swaps the instance has completed.
func (in *Instance) Swaps() int64 { return in.swaps }

// SetVersion pins the starting model version (the sim analogue of booting
// a pod with -model-version).
func (in *Instance) SetVersion(v int) { in.version = v }

// HotSwap mirrors the live server's background release swap: the new
// version loads and verifies for loadTime of virtual time while the
// incumbent keeps serving, then the version pointer flips. The executor
// never stalls — queued and in-flight requests complete untouched on
// whichever version they arrived under. A pod that is down when the load
// would finish swaps nothing (its restart re-reads CURRENT anyway).
func (in *Instance) HotSwap(version int, loadTime time.Duration) {
	in.eng.Schedule(loadTime, func() {
		if in.down || in.version == version {
			return
		}
		in.version = version
		in.swaps++
	})
}

// SetSlowdown sets the service-time multiplier (1 = healthy; 3 = a degraded
// node running 3× slower). Non-positive values reset to 1.
func (in *Instance) SetSlowdown(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	in.slowdown = factor
}

func (in *Instance) costFor(sessionLen int) model.Cost {
	if sessionLen < 1 {
		sessionLen = 1
	}
	if sessionLen >= len(in.costs) {
		sessionLen = len(in.costs) - 1
	}
	return in.costs[sessionLen]
}

func (in *Instance) scaled(service time.Duration) time.Duration {
	if in.slowdown == 1 {
		return service
	}
	return time.Duration(float64(service) * in.slowdown)
}

// Submit enqueues a request; done fires with the end-to-end latency. It
// predates fault injection: failures (impossible without chaos/resilience
// configured) surface only through SubmitOutcome.
func (in *Instance) Submit(sessionLen int, done func(latency time.Duration)) {
	in.SubmitOutcome(sessionLen, func(o Outcome) { done(o.Latency) })
}

// SubmitOutcome enqueues a request; done fires exactly once with the
// outcome. Down instances and full queues fail the request immediately.
func (in *Instance) SubmitOutcome(sessionLen int, done func(Outcome)) {
	arrival := in.eng.Now()
	if in.down {
		done(Outcome{Err: ErrPodDown})
		return
	}
	pending := in.Pending()
	// Graceful degradation: past the watermark, answer from the cheap
	// fallback responder, bypassing the model executor entirely.
	if in.res.DegradeAt > 0 && pending >= in.res.DegradeAt {
		epoch := in.epoch
		in.eng.Schedule(in.res.DegradeCost, func() {
			if in.epoch != epoch {
				done(Outcome{Latency: in.eng.Now() - arrival, Err: ErrPodDown})
				return
			}
			done(Outcome{Latency: in.eng.Now() - arrival, Degraded: true})
		})
		return
	}
	// Admission control: the static bounded queue is the backstop, ahead of
	// the adaptive limiter (mirroring the server's MaxPending ordering).
	if in.res.MaxQueue > 0 && pending >= in.res.MaxQueue {
		done(Outcome{Err: ErrShed})
		return
	}
	if lim := in.res.Limiter; lim != nil {
		if !lim.TryAcquire() {
			in.limited++
			done(Outcome{Err: ErrLimited})
			return
		}
		// Wrap the completion so every admitted request releases its slot
		// exactly once — drops (expired, CoDel, crash) feed the limiter
		// congestion evidence, successes feed it honest latency.
		inner := done
		done = func(o Outcome) {
			lim.Release(in.eng.Now()-arrival, o.Err != nil)
			inner(o)
		}
	}
	req := Request{SessionLen: sessionLen, arrival: arrival, done: done}
	req.sp = in.tracer.Start("")
	if in.spec.Kind == device.KindCPU {
		in.queue = append(in.queue, req)
		in.pumpCPU()
		return
	}
	in.buffer = append(in.buffer, req)
	if !in.busy && len(in.buffer) >= in.maxBatch {
		in.startBatch()
		return
	}
	if !in.flushArmed {
		in.flushArmed = true
		in.eng.Schedule(in.flushEvery, in.flushTimer)
	}
}

// dropAtDequeue applies the dequeue-time overload checks to a request about
// to leave the queue: deadline budget first (the request is already dead to
// its caller), CoDel second (shedding keeps the standing queue at target).
// It reports true after completing the request with the matching error.
func (in *Instance) dropAtDequeue(req Request, sojourn time.Duration) bool {
	if in.res.Budget > 0 && sojourn >= in.res.Budget {
		in.deadlineExpired++
		req.sp.Discard()
		req.done(Outcome{Latency: sojourn, Err: ErrDeadlineExpired})
		return true
	}
	if in.res.CoDel.ShouldDrop(sojourn) {
		in.codelDropped++
		req.sp.Discard()
		req.done(Outcome{Latency: sojourn, Err: ErrCoDelDropped})
		return true
	}
	return false
}

// pumpCPU starts the next request on the (single, intra-op parallel)
// executor when it is idle. Requests whose deadline budget expired in the
// queue, and CoDel-shed heads, are dropped here — at dequeue, before the
// executor — so expired work never reaches the encoder.
func (in *Instance) pumpCPU() {
	if in.busy || in.down {
		return
	}
	var req Request
	for {
		if len(in.queue) == 0 {
			return
		}
		req = in.queue[0]
		in.queue = in.queue[1:]
		if !in.dropAtDequeue(req, in.eng.Now()-req.arrival) {
			break
		}
	}
	in.busy = true
	in.inflight = append(in.inflight[:0], req)
	cost := in.costFor(req.SessionLen)
	enc, mips, service := in.serviceSplit(cost, in.scaled(in.spec.ParallelInference(cost, in.jit)))
	in.busyTotal += service
	req.sp.Observe(trace.StageQueueWait, in.eng.Now()-req.arrival)
	epoch := in.epoch
	in.eng.Schedule(service, func() {
		if in.epoch != epoch {
			return // crashed mid-service; Crash already failed the request
		}
		in.busy = false
		in.inflight = in.inflight[:0]
		req.sp.Observe(trace.StageEncoderForward, enc)
		req.sp.Observe(trace.StageMIPSTopK, mips)
		total := in.eng.Now() - req.arrival
		req.sp.FinishTotal(total)
		req.done(Outcome{Latency: total})
		in.pumpCPU()
	})
}

func (in *Instance) flushTimer() {
	in.flushArmed = false
	if in.down {
		return
	}
	if !in.busy && len(in.buffer) > 0 {
		in.startBatch()
	} else if len(in.buffer) > 0 {
		// Device busy: try again when it frees up (completion re-pumps),
		// but keep the periodic timer alive as a safety net.
		in.flushArmed = true
		in.eng.Schedule(in.flushEvery, in.flushTimer)
	}
}

// startBatch launches up to maxBatch buffered requests on the accelerator.
// Deadline-expired and CoDel-shed entries are filtered out while the batch
// assembles (the batcher's flush is the accelerator path's dequeue point),
// so a stale buffer never wastes a forward pass.
func (in *Instance) startBatch() {
	now := in.eng.Now()
	batch := make([]Request, 0, in.maxBatch)
	for len(in.buffer) > 0 && len(batch) < in.maxBatch {
		r := in.buffer[0]
		in.buffer = in.buffer[1:]
		if !in.dropAtDequeue(r, now-r.arrival) {
			batch = append(batch, r)
		}
	}
	n := len(batch)
	if n == 0 {
		return // every candidate was dropped; the next submit or flush re-pumps
	}
	in.busy = true
	in.inflight = append(in.inflight[:0], batch...)
	in.tracer.ObserveBatchFlush(n)
	flushStart := in.eng.Now()
	for _, r := range batch {
		r.sp.Observe(trace.StageBatchAssembly, flushStart-r.arrival)
		r.sp.SetBatchSize(n)
	}

	// The batch's service time uses the mean session length of its
	// requests (the encoder runs per request; the catalog scan dominates
	// and is shared).
	totalLen := 0
	for _, r := range batch {
		totalLen += r.SessionLen
	}
	meanLen := totalLen / n
	if meanLen < 1 {
		meanLen = 1
	}
	cost := in.costFor(meanLen)
	enc, mips, service := in.serviceSplit(cost, in.scaled(in.spec.BatchInference(cost, n, in.jit)))
	in.busyTotal += service
	epoch := in.epoch
	in.eng.Schedule(service, func() {
		if in.epoch != epoch {
			return // crashed mid-batch; Crash already failed the requests
		}
		in.busy = false
		in.inflight = in.inflight[:0]
		for _, r := range batch {
			r.sp.Observe(trace.StageEncoderForward, enc)
			r.sp.Observe(trace.StageMIPSTopK, mips)
			total := in.eng.Now() - r.arrival
			r.sp.FinishTotal(total)
			r.done(Outcome{Latency: total})
		}
		if len(in.buffer) >= in.maxBatch {
			in.startBatch()
		} else if len(in.buffer) > 0 && !in.flushArmed {
			in.flushArmed = true
			in.eng.Schedule(in.flushEvery, in.flushTimer)
		}
	})
}

// BusyTime returns the accumulated device-busy virtual time — the
// utilisation signal the autoscaler divides by wall time.
func (in *Instance) BusyTime() time.Duration { return in.busyTotal }

// DeadlineExpired returns how many requests were dropped at dequeue because
// their deadline budget had already been consumed in the queue.
func (in *Instance) DeadlineExpired() int64 { return in.deadlineExpired }

// CoDelDropped returns how many requests the CoDel queue discipline shed.
func (in *Instance) CoDelDropped() int64 { return in.codelDropped }

// Limited returns how many submissions the adaptive concurrency limiter
// refused.
func (in *Instance) Limited() int64 { return in.limited }

// Pending returns the number of requests buffered or queued (not yet
// completed) on this instance.
func (in *Instance) Pending() int {
	n := len(in.buffer) + len(in.queue)
	if in.busy {
		n++ // approximation: at least one request in service
	}
	return n
}
