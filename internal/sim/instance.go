package sim

import (
	"time"

	"etude/internal/device"
	"etude/internal/model"
)

// Request is one simulated recommendation request.
type Request struct {
	// SessionLen is the click-history length, which sets the encoder cost.
	SessionLen int
	// arrival is the virtual submission time.
	arrival time.Duration
	// done receives the end-to-end latency when the request completes.
	done func(latency time.Duration)
}

// Instance simulates one serving machine: a device (CPU or GPU), a deployed
// model (represented by its per-session-length cost table), optional JIT
// execution, and — on GPUs — the 2ms/1024 request batcher.
type Instance struct {
	eng  *Engine
	spec device.Spec
	jit  bool

	// costs[l] is the model's per-inference cost at session length l;
	// index 0 is unused.
	costs []model.Cost

	// Batching state (GPU).
	maxBatch   int
	flushEvery time.Duration
	buffer     []Request
	flushArmed bool

	// Service state.
	busy  bool
	queue []Request // CPU FIFO
	// busyTotal accumulates device-busy virtual time (service durations),
	// the utilisation signal consumed by the autoscaler.
	busyTotal time.Duration
}

// NewInstance builds a simulated instance serving the named model.
// flushEvery and maxBatch configure the batcher (paper defaults: 2ms, 1024,
// further capped by accelerator memory); they are ignored on CPU instances.
func NewInstance(eng *Engine, spec device.Spec, name string, cfg model.Config, jit bool, flushEvery time.Duration, maxBatch int) (*Instance, error) {
	cfg = normalizeConfig(cfg)
	costs := make([]model.Cost, cfg.MaxSessionLen+1)
	for l := 1; l <= cfg.MaxSessionLen; l++ {
		c, err := model.EstimateCost(name, cfg, l)
		if err != nil {
			return nil, err
		}
		costs[l] = c
	}
	eff := spec.EffectiveMaxBatch(costs[1])
	if eff > maxBatch {
		eff = maxBatch
	}
	if flushEvery <= 0 {
		flushEvery = 2 * time.Millisecond
	}
	return &Instance{
		eng:        eng,
		spec:       spec,
		jit:        jit,
		costs:      costs,
		maxBatch:   eff,
		flushEvery: flushEvery,
	}, nil
}

func normalizeConfig(cfg model.Config) model.Config {
	if cfg.MaxSessionLen == 0 {
		cfg.MaxSessionLen = 50
	}
	return cfg
}

// Fits reports whether the model fits the instance at all (GPU memory).
func (in *Instance) Fits() bool {
	return in.spec.Kind == device.KindCPU || in.maxBatch > 0
}

func (in *Instance) costFor(sessionLen int) model.Cost {
	if sessionLen < 1 {
		sessionLen = 1
	}
	if sessionLen >= len(in.costs) {
		sessionLen = len(in.costs) - 1
	}
	return in.costs[sessionLen]
}

// Submit enqueues a request; done fires with the end-to-end latency.
func (in *Instance) Submit(sessionLen int, done func(latency time.Duration)) {
	req := Request{SessionLen: sessionLen, arrival: in.eng.Now(), done: done}
	if in.spec.Kind == device.KindCPU {
		in.queue = append(in.queue, req)
		in.pumpCPU()
		return
	}
	in.buffer = append(in.buffer, req)
	if !in.busy && len(in.buffer) >= in.maxBatch {
		in.startBatch()
		return
	}
	if !in.flushArmed {
		in.flushArmed = true
		in.eng.Schedule(in.flushEvery, in.flushTimer)
	}
}

// pumpCPU starts the next request on the (single, intra-op parallel)
// executor when it is idle.
func (in *Instance) pumpCPU() {
	if in.busy || len(in.queue) == 0 {
		return
	}
	req := in.queue[0]
	in.queue = in.queue[1:]
	in.busy = true
	service := in.spec.ParallelInference(in.costFor(req.SessionLen), in.jit)
	in.busyTotal += service
	in.eng.Schedule(service, func() {
		in.busy = false
		req.done(in.eng.Now() - req.arrival)
		in.pumpCPU()
	})
}

func (in *Instance) flushTimer() {
	in.flushArmed = false
	if !in.busy && len(in.buffer) > 0 {
		in.startBatch()
	} else if len(in.buffer) > 0 {
		// Device busy: try again when it frees up (completion re-pumps),
		// but keep the periodic timer alive as a safety net.
		in.flushArmed = true
		in.eng.Schedule(in.flushEvery, in.flushTimer)
	}
}

// startBatch launches up to maxBatch buffered requests on the accelerator.
func (in *Instance) startBatch() {
	n := len(in.buffer)
	if n > in.maxBatch {
		n = in.maxBatch
	}
	batch := make([]Request, n)
	copy(batch, in.buffer)
	in.buffer = in.buffer[n:]
	in.busy = true

	// The batch's service time uses the mean session length of its
	// requests (the encoder runs per request; the catalog scan dominates
	// and is shared).
	totalLen := 0
	for _, r := range batch {
		totalLen += r.SessionLen
	}
	meanLen := totalLen / n
	if meanLen < 1 {
		meanLen = 1
	}
	service := in.spec.BatchInference(in.costFor(meanLen), n, in.jit)
	in.busyTotal += service
	in.eng.Schedule(service, func() {
		in.busy = false
		for _, r := range batch {
			r.done(in.eng.Now() - r.arrival)
		}
		if len(in.buffer) >= in.maxBatch {
			in.startBatch()
		} else if len(in.buffer) > 0 && !in.flushArmed {
			in.flushArmed = true
			in.eng.Schedule(in.flushEvery, in.flushTimer)
		}
	})
}

// BusyTime returns the accumulated device-busy virtual time — the
// utilisation signal the autoscaler divides by wall time.
func (in *Instance) BusyTime() time.Duration { return in.busyTotal }

// Pending returns the number of requests buffered or queued (not yet
// completed) on this instance.
func (in *Instance) Pending() int {
	n := len(in.buffer) + len(in.queue)
	if in.busy {
		n++ // approximation: at least one request in service
	}
	return n
}
