package sim

import (
	"errors"
	"fmt"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/trace"
)

// Fault outcomes a simulated instance can report for a request. They mirror
// what a real client observes: a connection reset when the pod dies, and an
// immediate refusal when admission control sheds the request.
var (
	// ErrPodDown is returned for requests routed to (or in flight on) a
	// crashed pod.
	ErrPodDown = errors.New("sim: pod down")
	// ErrShed is returned when the instance's bounded queue is full and the
	// request is refused instead of enqueued.
	ErrShed = errors.New("sim: request shed (queue full)")
)

// Outcome describes one completed simulated request.
type Outcome struct {
	// Latency is the end-to-end virtual time from submission to completion
	// (for failed requests: until the failure was observed).
	Latency time.Duration
	// Err is non-nil when the request failed (ErrPodDown, ErrShed).
	Err error
	// Degraded marks a response served by the cheap fallback responder
	// instead of the model.
	Degraded bool
}

// Resilience configures the server-side resilience mechanisms of a simulated
// instance. The zero value reproduces the original unbounded happy-path
// behaviour.
type Resilience struct {
	// MaxQueue bounds requests waiting or in service; submissions beyond it
	// are refused with ErrShed (admission control). 0 = unbounded.
	MaxQueue int
	// DegradeAt is the pending-request watermark at which new requests are
	// answered by the cheap popularity-style fallback responder instead of
	// the model (graceful degradation). 0 disables degradation.
	DegradeAt int
	// DegradeCost is the service time of the fallback responder (default
	// 200µs — a precomputed list lookup, no model execution).
	DegradeCost time.Duration
}

func (r Resilience) withDefaults() Resilience {
	if r.DegradeCost <= 0 {
		r.DegradeCost = 200 * time.Microsecond
	}
	return r
}

// Request is one simulated recommendation request.
type Request struct {
	// SessionLen is the click-history length, which sets the encoder cost.
	SessionLen int
	// arrival is the virtual submission time.
	arrival time.Duration
	// done receives the request outcome when it completes or fails.
	done func(Outcome)
	// sp is the request's trace span (nil when tracing is off or the
	// request never reached the executor).
	sp *trace.Span
}

// Instance simulates one serving machine: a device (CPU or GPU), a deployed
// model (represented by its per-session-length cost table), optional JIT
// execution, and — on GPUs — the 2ms/1024 request batcher. Fault injection
// (internal/chaos) can crash/restart it and dilate its service times;
// Resilience bounds its queue and enables graceful degradation.
type Instance struct {
	eng  *Engine
	spec device.Spec
	jit  bool

	// costs[l] is the model's per-inference cost at session length l;
	// index 0 is unused.
	costs []model.Cost

	// Batching state (GPU).
	maxBatch   int
	flushEvery time.Duration
	buffer     []Request
	flushArmed bool

	// Service state.
	busy  bool
	queue []Request // CPU FIFO
	// busyTotal accumulates device-busy virtual time (service durations),
	// the utilisation signal consumed by the autoscaler.
	busyTotal time.Duration

	// Fault state (driven by the chaos injector).
	down     bool
	slowdown float64 // service-time multiplier; 1 = healthy
	epoch    uint64  // bumped on every crash; stale completions are dropped
	inflight []Request

	res Resilience

	// tracer, when set, records per-stage spans in virtual time. It must be
	// built with the engine's clock (see SetTracer).
	tracer *trace.Tracer
}

// NewInstance builds a simulated instance serving the named model.
// flushEvery and maxBatch configure the batcher (paper defaults: 2ms, 1024,
// further capped by accelerator memory); they are ignored on CPU instances.
func NewInstance(eng *Engine, spec device.Spec, name string, cfg model.Config, jit bool, flushEvery time.Duration, maxBatch int) (*Instance, error) {
	cfg = normalizeConfig(cfg)
	costs := make([]model.Cost, cfg.MaxSessionLen+1)
	for l := 1; l <= cfg.MaxSessionLen; l++ {
		c, err := model.EstimateCost(name, cfg, l)
		if err != nil {
			return nil, err
		}
		costs[l] = c
	}
	return NewInstanceFromCosts(eng, spec, costs, jit, flushEvery, maxBatch)
}

// NewInstanceFromCosts builds an instance directly from a per-session-
// length cost table: costs[l] is the per-inference cost at session length
// l, index 0 unused. This is the entry point for workers whose cost is not
// a registered model's whole inference — the sharded retrieval tier
// (internal/shard) builds per-shard workers by slicing a model's cost
// table, so each worker's service time is its shard's share of the catalog
// scan.
func NewInstanceFromCosts(eng *Engine, spec device.Spec, costs []model.Cost, jit bool, flushEvery time.Duration, maxBatch int) (*Instance, error) {
	if len(costs) < 2 {
		return nil, fmt.Errorf("sim: cost table must cover at least session length 1, got %d entries", len(costs))
	}
	eff := spec.EffectiveMaxBatch(costs[1])
	if eff > maxBatch {
		eff = maxBatch
	}
	if flushEvery <= 0 {
		flushEvery = 2 * time.Millisecond
	}
	return &Instance{
		eng:        eng,
		spec:       spec,
		jit:        jit,
		costs:      costs,
		maxBatch:   eff,
		flushEvery: flushEvery,
		slowdown:   1,
	}, nil
}

func normalizeConfig(cfg model.Config) model.Config {
	if cfg.MaxSessionLen == 0 {
		cfg.MaxSessionLen = 50
	}
	return cfg
}

// SetResilience configures admission control and graceful degradation.
func (in *Instance) SetResilience(r Resilience) { in.res = r.withDefaults() }

// SetTracer attaches a stage tracer. Pass a tracer built with the engine's
// virtual clock — trace.New(trace.Options{Clock: eng.Now}) — so spans measure
// simulated time, not wall time. A nil tracer turns tracing back off.
func (in *Instance) SetTracer(t *trace.Tracer) { in.tracer = t }

// splitService attributes a (virtual) service duration to the encoder-forward
// and mips-topk stages proportionally to the model's FLOP breakdown — the
// same decomposition the cost model itself uses.
func splitService(c model.Cost, service time.Duration) (enc, mips time.Duration) {
	total := c.EncoderFLOPs + c.MIPSFLOPs + c.TopKOps
	if total <= 0 {
		return service, 0
	}
	enc = time.Duration(float64(service) * c.EncoderFLOPs / total)
	return enc, service - enc
}

// Fits reports whether the model fits the instance at all (GPU memory).
func (in *Instance) Fits() bool {
	return in.spec.Kind == device.KindCPU || in.maxBatch > 0
}

// Up reports whether the instance is serving (false after Crash until
// Restart) — the readiness-probe signal for health-aware balancing.
func (in *Instance) Up() bool { return !in.down }

// Crash takes the instance down, failing every queued, buffered and
// in-flight request with ErrPodDown (a dying pod resets its connections).
// Subsequent submissions fail immediately until Restart.
func (in *Instance) Crash() {
	if in.down {
		return
	}
	in.down = true
	in.epoch++ // invalidate scheduled completions
	in.busy = false
	in.flushArmed = false
	now := in.eng.Now()
	failed := make([]Request, 0, len(in.queue)+len(in.buffer)+len(in.inflight))
	failed = append(failed, in.inflight...)
	failed = append(failed, in.queue...)
	failed = append(failed, in.buffer...)
	in.inflight, in.queue, in.buffer = nil, nil, nil
	for _, r := range failed {
		r.sp.Discard()
		r.done(Outcome{Latency: now - r.arrival, Err: ErrPodDown})
	}
}

// Restart brings a crashed instance back up with an empty queue (the
// restarted pod passed its readiness probe).
func (in *Instance) Restart() { in.down = false }

// SetSlowdown sets the service-time multiplier (1 = healthy; 3 = a degraded
// node running 3× slower). Non-positive values reset to 1.
func (in *Instance) SetSlowdown(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	in.slowdown = factor
}

func (in *Instance) costFor(sessionLen int) model.Cost {
	if sessionLen < 1 {
		sessionLen = 1
	}
	if sessionLen >= len(in.costs) {
		sessionLen = len(in.costs) - 1
	}
	return in.costs[sessionLen]
}

func (in *Instance) scaled(service time.Duration) time.Duration {
	if in.slowdown == 1 {
		return service
	}
	return time.Duration(float64(service) * in.slowdown)
}

// Submit enqueues a request; done fires with the end-to-end latency. It
// predates fault injection: failures (impossible without chaos/resilience
// configured) surface only through SubmitOutcome.
func (in *Instance) Submit(sessionLen int, done func(latency time.Duration)) {
	in.SubmitOutcome(sessionLen, func(o Outcome) { done(o.Latency) })
}

// SubmitOutcome enqueues a request; done fires exactly once with the
// outcome. Down instances and full queues fail the request immediately.
func (in *Instance) SubmitOutcome(sessionLen int, done func(Outcome)) {
	req := Request{SessionLen: sessionLen, arrival: in.eng.Now(), done: done}
	if in.down {
		done(Outcome{Err: ErrPodDown})
		return
	}
	pending := in.Pending()
	// Graceful degradation: past the watermark, answer from the cheap
	// fallback responder, bypassing the model executor entirely.
	if in.res.DegradeAt > 0 && pending >= in.res.DegradeAt {
		epoch := in.epoch
		in.eng.Schedule(in.res.DegradeCost, func() {
			if in.epoch != epoch {
				req.done(Outcome{Latency: in.eng.Now() - req.arrival, Err: ErrPodDown})
				return
			}
			req.done(Outcome{Latency: in.eng.Now() - req.arrival, Degraded: true})
		})
		return
	}
	// Admission control: a bounded queue sheds instead of growing without
	// limit.
	if in.res.MaxQueue > 0 && pending >= in.res.MaxQueue {
		done(Outcome{Err: ErrShed})
		return
	}
	req.sp = in.tracer.Start("")
	if in.spec.Kind == device.KindCPU {
		in.queue = append(in.queue, req)
		in.pumpCPU()
		return
	}
	in.buffer = append(in.buffer, req)
	if !in.busy && len(in.buffer) >= in.maxBatch {
		in.startBatch()
		return
	}
	if !in.flushArmed {
		in.flushArmed = true
		in.eng.Schedule(in.flushEvery, in.flushTimer)
	}
}

// pumpCPU starts the next request on the (single, intra-op parallel)
// executor when it is idle.
func (in *Instance) pumpCPU() {
	if in.busy || in.down || len(in.queue) == 0 {
		return
	}
	req := in.queue[0]
	in.queue = in.queue[1:]
	in.busy = true
	in.inflight = append(in.inflight[:0], req)
	cost := in.costFor(req.SessionLen)
	service := in.scaled(in.spec.ParallelInference(cost, in.jit))
	in.busyTotal += service
	req.sp.Observe(trace.StageQueueWait, in.eng.Now()-req.arrival)
	epoch := in.epoch
	in.eng.Schedule(service, func() {
		if in.epoch != epoch {
			return // crashed mid-service; Crash already failed the request
		}
		in.busy = false
		in.inflight = in.inflight[:0]
		enc, mips := splitService(cost, service)
		req.sp.Observe(trace.StageEncoderForward, enc)
		req.sp.Observe(trace.StageMIPSTopK, mips)
		total := in.eng.Now() - req.arrival
		req.sp.FinishTotal(total)
		req.done(Outcome{Latency: total})
		in.pumpCPU()
	})
}

func (in *Instance) flushTimer() {
	in.flushArmed = false
	if in.down {
		return
	}
	if !in.busy && len(in.buffer) > 0 {
		in.startBatch()
	} else if len(in.buffer) > 0 {
		// Device busy: try again when it frees up (completion re-pumps),
		// but keep the periodic timer alive as a safety net.
		in.flushArmed = true
		in.eng.Schedule(in.flushEvery, in.flushTimer)
	}
}

// startBatch launches up to maxBatch buffered requests on the accelerator.
func (in *Instance) startBatch() {
	n := len(in.buffer)
	if n > in.maxBatch {
		n = in.maxBatch
	}
	batch := make([]Request, n)
	copy(batch, in.buffer)
	in.buffer = in.buffer[n:]
	in.busy = true
	in.inflight = append(in.inflight[:0], batch...)
	in.tracer.ObserveBatchFlush(n)
	flushStart := in.eng.Now()
	for _, r := range batch {
		r.sp.Observe(trace.StageBatchAssembly, flushStart-r.arrival)
		r.sp.SetBatchSize(n)
	}

	// The batch's service time uses the mean session length of its
	// requests (the encoder runs per request; the catalog scan dominates
	// and is shared).
	totalLen := 0
	for _, r := range batch {
		totalLen += r.SessionLen
	}
	meanLen := totalLen / n
	if meanLen < 1 {
		meanLen = 1
	}
	cost := in.costFor(meanLen)
	service := in.scaled(in.spec.BatchInference(cost, n, in.jit))
	in.busyTotal += service
	epoch := in.epoch
	in.eng.Schedule(service, func() {
		if in.epoch != epoch {
			return // crashed mid-batch; Crash already failed the requests
		}
		in.busy = false
		in.inflight = in.inflight[:0]
		enc, mips := splitService(cost, service)
		for _, r := range batch {
			r.sp.Observe(trace.StageEncoderForward, enc)
			r.sp.Observe(trace.StageMIPSTopK, mips)
			total := in.eng.Now() - r.arrival
			r.sp.FinishTotal(total)
			r.done(Outcome{Latency: total})
		}
		if len(in.buffer) >= in.maxBatch {
			in.startBatch()
		} else if len(in.buffer) > 0 && !in.flushArmed {
			in.flushArmed = true
			in.eng.Schedule(in.flushEvery, in.flushTimer)
		}
	})
}

// BusyTime returns the accumulated device-busy virtual time — the
// utilisation signal the autoscaler divides by wall time.
func (in *Instance) BusyTime() time.Duration { return in.busyTotal }

// Pending returns the number of requests buffered or queued (not yet
// completed) on this instance.
func (in *Instance) Pending() int {
	n := len(in.buffer) + len(in.queue)
	if in.busy {
		n++ // approximation: at least one request in service
	}
	return n
}
