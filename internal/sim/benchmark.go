package sim

import (
	"fmt"
	"math/rand"
	"time"

	"etude/internal/device"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/powerlaw"
)

// LoadConfig describes a simulated benchmark run, mirroring the live load
// generator's Algorithm 2 parameters.
type LoadConfig struct {
	// TargetRate is r: requests/second reached at the end of the ramp.
	TargetRate float64
	// Duration is d: total run length in virtual time (paper: 10 minutes).
	Duration time.Duration
	// Timeout marks responses slower than this as errors (like the live
	// generator's request timeout).
	Timeout time.Duration
	// NoRamp disables the time-proportional ramp-up and offers the target
	// rate from the first tick — used by steady-state capacity probing.
	NoRamp bool
	// AlphaLength is the session-length power-law exponent used to sample
	// per-request session lengths.
	AlphaLength float64
	// MaxSessionLen caps sampled lengths.
	MaxSessionLen int
	// Seed drives the session-length sampling.
	Seed int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.AlphaLength == 0 {
		c.AlphaLength = 2.2
	}
	if c.MaxSessionLen == 0 {
		c.MaxSessionLen = 50
	}
	return c
}

// RunResult summarises a simulated benchmark.
type RunResult struct {
	// Recorder holds latency and error measurements (errors = timeouts).
	Recorder *metrics.Recorder
	// Backpressured counts scheduling slots skipped because too many
	// requests were pending.
	Backpressured int64
	// Sent is the number of requests actually issued.
	Sent int64
	// Planned is the number of requests the ramp schedule wanted to issue.
	Planned int64
}

// Meets reports whether the run satisfied a latency SLO at the offered
// load: the p90 within budget, (almost) no timeouts, and (almost) no
// backpressure-induced load shedding.
func (r RunResult) Meets(p90Budget time.Duration) bool {
	if r.Sent == 0 {
		return false
	}
	okRatio := float64(r.Sent-r.Recorder.Errors()) / float64(r.Planned)
	return r.Recorder.Overall().P90 <= p90Budget && okRatio >= 0.99
}

// RunBenchmark executes Algorithm 2's schedule in virtual time against a
// fleet of instances with round-robin routing, and returns the measured
// latencies. All instances must be registered on the same Engine.
func RunBenchmark(eng *Engine, cfg LoadConfig, fleet []*Instance) (*RunResult, error) {
	cfg = cfg.withDefaults()
	if cfg.TargetRate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: rate and duration must be positive: %+v", cfg)
	}
	if len(fleet) == 0 {
		return nil, fmt.Errorf("sim: empty fleet")
	}
	for _, in := range fleet {
		if !in.Fits() {
			return nil, fmt.Errorf("sim: model does not fit instance %s", in.spec.Name)
		}
	}

	lengths, err := powerlaw.New(cfg.AlphaLength, 1)
	if err != nil {
		return nil, fmt.Errorf("sim: session length distribution: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := &RunResult{Recorder: metrics.NewRecorder()}
	pending := 0
	next := 0 // round-robin index

	ticks := int(cfg.Duration / time.Second)
	if ticks < 1 {
		ticks = 1
	}
	start := eng.Now()
	for t := 0; t < ticks; t++ {
		tick := t
		frac := float64(t+1) / float64(ticks)
		if cfg.NoRamp {
			frac = 1
		}
		rc := int(cfg.TargetRate * frac)
		if rc < 1 {
			rc = 1
		}
		res.Planned += int64(rc)
		gap := time.Second / time.Duration(rc)
		for i := 0; i < rc; i++ {
			at := start + time.Duration(tick)*time.Second + time.Duration(i)*gap
			sessionLen := lengths.SampleIntCapped(rng, cfg.MaxSessionLen)
			eng.Schedule(at-eng.Now(), func() {
				// Backpressure: skip the slot when the fleet already has a
				// tick's worth of work outstanding.
				if pending >= rc {
					res.Backpressured++
					return
				}
				pending++
				res.Sent++
				res.Recorder.RecordSent(tick)
				in := fleet[next%len(fleet)]
				next++
				in.Submit(sessionLen, func(latency time.Duration) {
					pending--
					if latency > cfg.Timeout {
						res.Recorder.RecordError(tick)
					} else {
						res.Recorder.RecordLatency(tick, latency)
					}
				})
			})
		}
	}
	eng.Run(start + cfg.Duration)
	eng.Drain()
	return res, nil
}

// Capacity finds the highest request rate (requests/second) a single
// instance of spec sustains for the model within the latency SLO, via
// binary search over simulated runs. Zero means the model cannot be served
// within the SLO at any rate (or does not fit).
func Capacity(spec device.Spec, name string, cfg model.Config, jit bool, slo time.Duration) (float64, error) {
	const (
		lo0      = 1.0
		hi0      = 8000.0
		duration = 10 * time.Second
	)
	feasibleAt := func(rate float64) (bool, error) {
		eng := NewEngine()
		in, err := NewInstance(eng, spec, name, cfg, jit, 2*time.Millisecond, spec.MaxBatch)
		if err != nil {
			return false, err
		}
		if !in.Fits() {
			return false, nil
		}
		res, err := RunBenchmark(eng, LoadConfig{
			TargetRate: rate,
			Duration:   duration,
			NoRamp:     true,
			Seed:       1,
		}, []*Instance{in})
		if err != nil {
			return false, err
		}
		return res.Meets(slo), nil
	}

	ok, err := feasibleAt(lo0)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	lo, hi := lo0, hi0
	if ok, err := feasibleAt(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil
	}
	for hi-lo > 1 && hi/lo > 1.05 {
		mid := (lo + hi) / 2
		ok, err := feasibleAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
