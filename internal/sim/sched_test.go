package sim

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sched"
	"etude/internal/trace"
)

func newSchedT4(t *testing.T, eng *Engine, scfg sched.Config) *SchedInstance {
	t.Helper()
	in, err := NewSchedInstance(eng, device.GPUT4(), "gru4rec", model.Config{CatalogSize: 1_000_000, Seed: 1}, true, scfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func schedStatsFor(in *SchedInstance, tenant string) sched.TenantStats {
	for _, s := range in.Stats() {
		if s.Tenant == tenant {
			return s
		}
	}
	return sched.TenantStats{}
}

func TestSchedInstanceServesAll(t *testing.T) {
	eng := NewEngine()
	in := newSchedT4(t, eng, sched.Config{
		Tenants:    []sched.TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
		MaxBatch:   64,
		FlushEvery: 2 * time.Millisecond,
	})
	const n = 200
	served := 0
	var latencies []time.Duration
	for i := 0; i < n; i++ {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		delay := time.Duration(i) * 100 * time.Microsecond
		tn := tenant
		eng.Schedule(delay, func() {
			in.Submit(tn, 10, 0, func(o Outcome) {
				if o.Err != nil {
					t.Errorf("unexpected error: %v", o.Err)
					return
				}
				served++
				latencies = append(latencies, o.Latency)
			})
		})
	}
	eng.Drain()
	if served != n {
		t.Fatalf("served %d of %d", served, n)
	}
	if in.Flushes() == 0 {
		t.Fatal("no batches assembled")
	}
	for _, l := range latencies {
		if l <= 0 {
			t.Fatalf("non-positive latency %v", l)
		}
	}
	if in.Pending() != 0 {
		t.Fatalf("pending = %d after drain", in.Pending())
	}
}

// Two identical runs must produce bit-identical outcomes: the scheduler
// mirror lives inside the deterministic event loop.
func TestSchedInstanceDeterministic(t *testing.T) {
	run := func() string {
		eng := NewEngine()
		in := newSchedT4(t, eng, sched.Config{
			Tenants:    []sched.TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
			MaxBatch:   32,
			FlushEvery: 2 * time.Millisecond,
			MaxQueue:   16,
		})
		out := ""
		for i := 0; i < 300; i++ {
			tenant := "a"
			if i%3 == 0 {
				tenant = "b"
			}
			delay := time.Duration(i) * 37 * time.Microsecond
			tn, idx := tenant, i
			eng.Schedule(delay, func() {
				in.Submit(tn, 5+idx%20, 30*time.Millisecond, func(o Outcome) {
					out += fmt.Sprintf("%d:%v:%v;", idx, o.Latency, o.Err)
				})
			})
		}
		eng.Drain()
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatal("identical runs diverged")
	}
}

// Under sustained saturation, WDRR throughput shares converge to the
// configured weights (3:1 within ±10%) — the isolation contract.
func TestSchedInstanceWDRRShares(t *testing.T) {
	eng := NewEngine()
	in := newSchedT4(t, eng, sched.Config{
		Tenants:    []sched.TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
		MaxBatch:   32,
		FlushEvery: 2 * time.Millisecond,
		MaxQueue:   256,
	})
	// Both tenants offer far more than the device can serve; bounded queues
	// shed the excess so the served ratio is the scheduler's doing.
	const horizon = 200 * time.Millisecond
	for _, tenant := range []string{"a", "b"} {
		tn := tenant
		for at := time.Duration(0); at < horizon; at += 20 * time.Microsecond {
			eng.Schedule(at, func() {
				in.Submit(tn, 10, 0, func(Outcome) {})
			})
		}
	}
	eng.Run(horizon)
	a, b := schedStatsFor(in, "a"), schedStatsFor(in, "b")
	total := a.Served + b.Served
	if total == 0 {
		t.Fatal("nothing served")
	}
	share := float64(a.Served) / float64(total)
	if share < 0.65 || share > 0.85 {
		t.Fatalf("tenant a share = %.3f (served a=%d b=%d), want 0.75±0.10", share, a.Served, b.Served)
	}
}

// A tenant's flash crowd must not break another tenant's latency: under
// WDRR the victim's p99 stays near its quiet baseline, while a shared
// single queue lets the crowd push it far past.
func TestSchedInstanceFlashCrowdIsolation(t *testing.T) {
	// victimRun drives tenant b's steady 1 req/ms workload for 300ms and
	// returns its sorted served latencies. crowd adds tenant a's 20 req/ms
	// burst during [50ms, 150ms); shared collapses both tenants into one
	// queue (the no-scheduler baseline).
	victimRun := func(crowd, shared bool) []time.Duration {
		eng := NewEngine()
		scfg := sched.Config{
			Tenants:    []sched.TenantConfig{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}},
			MaxBatch:   32,
			FlushEvery: 2 * time.Millisecond,
			MaxQueue:   512,
		}
		if shared {
			scfg.Tenants = nil // everything lands in one lazily-created queue
		}
		// A 100k catalog keeps the batch-32 service time ~1ms, so victim
		// latency reflects scheduling, not raw device occupancy.
		in, err := NewSchedInstance(eng, device.GPUT4(), "gru4rec", model.Config{CatalogSize: 100_000, Seed: 1}, true, scfg)
		if err != nil {
			t.Fatal(err)
		}
		tenantOf := func(want string) string {
			if shared {
				return "shared"
			}
			return want
		}
		var victim []time.Duration
		const horizon = 300 * time.Millisecond
		for at := time.Duration(0); at < horizon; at += time.Millisecond {
			eng.Schedule(at, func() {
				in.Submit(tenantOf("b"), 10, 0, func(o Outcome) {
					if o.Err == nil {
						victim = append(victim, o.Latency)
					}
				})
			})
		}
		if crowd {
			// 100 req/ms — ~3× the device's batched capacity, so the crowd
			// genuinely saturates rather than just raising utilisation.
			for at := 50 * time.Millisecond; at < 150*time.Millisecond; at += 10 * time.Microsecond {
				eng.Schedule(at, func() {
					in.Submit(tenantOf("a"), 10, 0, func(Outcome) {})
				})
			}
		}
		eng.Drain()
		sort.Slice(victim, func(i, j int) bool { return victim[i] < victim[j] })
		return victim
	}
	p99 := func(ls []time.Duration) time.Duration {
		if len(ls) == 0 {
			return 0
		}
		return ls[len(ls)*99/100]
	}
	quiet := p99(victimRun(false, false))
	isolated := p99(victimRun(true, false))
	exposed := p99(victimRun(true, true))
	if quiet == 0 || isolated == 0 || exposed == 0 {
		t.Fatalf("missing victim latencies: quiet=%v isolated=%v exposed=%v", quiet, isolated, exposed)
	}
	// The WDRR arm holds the victim near its quiet baseline...
	if isolated > 2*quiet {
		t.Fatalf("WDRR victim p99 %v vs quiet %v — isolation failed", isolated, quiet)
	}
	// ...while the shared queue lets the crowd inflate it well past.
	if exposed < 2*isolated {
		t.Fatalf("shared-queue victim p99 %v vs isolated %v — baseline should break", exposed, isolated)
	}
}

// Entries whose deadline budget expires while queued are dropped at
// assembly with ErrDeadlineExpired and never consume device time.
func TestSchedInstanceExpiresDeadEntries(t *testing.T) {
	eng := NewEngine()
	in := newSchedT4(t, eng, sched.Config{
		MaxBatch:   4,
		FlushEvery: 2 * time.Millisecond,
	})
	// Saturate the device so the late submission has to queue past its
	// tiny budget.
	for i := 0; i < 64; i++ {
		in.Submit("t", 10, 0, func(Outcome) {})
	}
	var gotErr error
	fired := false
	eng.Schedule(time.Millisecond, func() {
		in.Submit("t", 10, 100*time.Microsecond, func(o Outcome) {
			fired = true
			gotErr = o.Err
		})
	})
	eng.Drain()
	if !fired {
		t.Fatal("tight-budget request never completed")
	}
	if !errors.Is(gotErr, ErrDeadlineExpired) {
		t.Fatalf("tight-budget outcome = %v, want ErrDeadlineExpired", gotErr)
	}
	if st := schedStatsFor(in, "t"); st.Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", st.Expired)
	}
}

// A full tenant queue sheds immediately with ErrShed.
func TestSchedInstanceShedsAtQueueBound(t *testing.T) {
	eng := NewEngine()
	in := newSchedT4(t, eng, sched.Config{
		MaxBatch:   64,
		FlushEvery: time.Hour, // never flush during the test
		MaxQueue:   8,
	})
	sheds := 0
	for i := 0; i < 12; i++ {
		in.Submit("t", 10, 0, func(o Outcome) {
			if errors.Is(o.Err, ErrShed) {
				sheds++
			}
		})
	}
	if sheds != 4 {
		t.Fatalf("sheds = %d, want 4", sheds)
	}
	if st := schedStatsFor(in, "t"); st.Shed != 4 || st.Pending != 8 {
		t.Fatalf("stats = %+v, want Shed 4 Pending 8", st)
	}
}

// Spans record the sched-wait stage so trace aggregation can attribute
// tail movement to scheduling.
func TestSchedInstanceRecordsSchedWait(t *testing.T) {
	eng := NewEngine()
	in := newSchedT4(t, eng, sched.Config{MaxBatch: 8, FlushEvery: 2 * time.Millisecond})
	tr := trace.New(trace.Options{Clock: eng.Now})
	in.SetTracer(tr)
	// Fewer than the target batch: the flush waits out FlushEvery, so the
	// sched-wait observations are non-zero (zero durations are skipped).
	for i := 0; i < 4; i++ {
		in.Submit("t", 10, 0, func(Outcome) {})
	}
	eng.Drain()
	snap := tr.StageSnapshot(trace.StageSchedWait)
	if snap.Count == 0 {
		t.Fatal("no sched-wait stage observations")
	}
}
