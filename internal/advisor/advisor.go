// Package advisor implements the automatic choice of instance types for
// declaratively specified workloads — named by the paper as future work
// ("the automatic choice of appropriate instance types for declaratively
// specified workloads").
//
// Given a model, a catalog size, a target throughput and a latency SLO, the
// advisor runs simulated capacity searches across all instance types, sizes
// the candidate fleets, validates the winning fleet end-to-end under the
// ramped load, and returns the cheapest deployment that passes.
package advisor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"etude/internal/costmodel"
	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sim"
)

// Request is the declaratively specified workload.
type Request struct {
	// Model is the SBR model to deploy.
	Model string
	// CatalogSize is C.
	CatalogSize int
	// TargetRate is the required throughput (requests/second).
	TargetRate float64
	// SLO is the p90 latency budget (default: 50ms).
	SLO time.Duration
	// Instances restricts the candidate instance types (default: all).
	Instances []string
	// Seed drives the simulations.
	Seed int64
}

func (r Request) withDefaults() Request {
	if r.SLO <= 0 {
		r.SLO = costmodel.LatencySLO
	}
	if len(r.Instances) == 0 {
		r.Instances = []string{"cpu", "gpu-t4", "gpu-a100"}
	}
	return r
}

func (r Request) validate() error {
	if r.Model == "" {
		return fmt.Errorf("advisor: model is required")
	}
	if r.CatalogSize <= 0 {
		return fmt.Errorf("advisor: catalog size must be positive, got %d", r.CatalogSize)
	}
	if r.TargetRate <= 0 {
		return fmt.Errorf("advisor: target rate must be positive, got %v", r.TargetRate)
	}
	return nil
}

// Candidate is one evaluated deployment option.
type Candidate struct {
	costmodel.Option
	// Capacity is the per-instance sustainable rate under the SLO.
	Capacity float64 `json:"capacity"`
	// Validated is true when the sized fleet passed the end-to-end ramp
	// simulation at the target rate.
	Validated bool `json:"validated"`
	// P90 is the fleet's end-to-end p90 at the target rate (validated
	// candidates only).
	P90 time.Duration `json:"p90"`
}

// Advice is the advisor's output.
type Advice struct {
	Request    Request     `json:"request"`
	Candidates []Candidate `json:"candidates"`
	// Best is the cheapest validated candidate; Feasible is false when no
	// candidate passed.
	Best     Candidate `json:"best"`
	Feasible bool      `json:"feasible"`
	// CloudOptions prices the same fleets across GCP, AWS and Azure
	// (capacities transfer: the hardware is identical). Sorted cheapest
	// first.
	CloudOptions []costmodel.CloudOption `json:"cloud_options"`
}

// Advise evaluates all candidate instance types and returns the cheapest
// validated deployment.
func Advise(req Request) (*Advice, error) {
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		return nil, err
	}
	cfg := model.Config{CatalogSize: req.CatalogSize, Seed: req.Seed}
	advice := &Advice{Request: req}
	capacityByDevice := make(map[string]float64)
	for _, instName := range req.Instances {
		spec, err := device.ByName(instName)
		if err != nil {
			return nil, err
		}
		capacity, err := sim.Capacity(spec, req.Model, cfg, true, req.SLO)
		if err != nil {
			return nil, fmt.Errorf("advisor: capacity of %s: %w", instName, err)
		}
		capacityByDevice[instName] = capacity
		cand := Candidate{
			Option:   costmodel.Plan(spec, capacity, costmodel.Scenario{CatalogSize: req.CatalogSize, TargetRate: req.TargetRate}),
			Capacity: capacity,
		}
		// A fleet beyond maxFleet instances means the instance type is the
		// wrong tool for the workload (Table I treats such models/instances
		// as unable to handle the scenario).
		const maxFleet = 16
		if cand.Count > maxFleet {
			cand.Option = costmodel.Option{Instance: instName}
		}
		if cand.Feasible {
			p90, ok, err := validateFleet(spec, req, cfg, cand.Count)
			if err != nil {
				return nil, err
			}
			cand.Validated = ok
			cand.P90 = p90
		}
		advice.Candidates = append(advice.Candidates, cand)
	}
	sort.Slice(advice.Candidates, func(i, j int) bool {
		a, b := advice.Candidates[i], advice.Candidates[j]
		if a.Validated != b.Validated {
			return a.Validated
		}
		return a.MonthlyUSD < b.MonthlyUSD
	})
	for _, c := range advice.Candidates {
		if c.Validated {
			advice.Best = c
			advice.Feasible = true
			break
		}
	}
	// Cross-cloud pricing for the same capacities: the paper's future-work
	// "support additional cloud environments". Instances whose candidate
	// failed validation (or was filtered as an unreasonable fleet) are not
	// offered on any cloud.
	for _, c := range advice.Candidates {
		if !c.Validated {
			capacityByDevice[c.Instance] = 0
		}
	}
	advice.CloudOptions = costmodel.PlanAcrossClouds(capacityByDevice,
		costmodel.Scenario{CatalogSize: req.CatalogSize, TargetRate: req.TargetRate})
	return advice, nil
}

// validateFleet reruns the winning configuration end-to-end: a ramp to the
// target rate against `count` instances.
func validateFleet(spec device.Spec, req Request, cfg model.Config, count int) (time.Duration, bool, error) {
	eng := sim.NewEngine()
	fleet := make([]*sim.Instance, count)
	for i := range fleet {
		in, err := sim.NewInstance(eng, spec, req.Model, cfg, true, 2*time.Millisecond, spec.MaxBatch)
		if err != nil {
			return 0, false, err
		}
		fleet[i] = in
	}
	res, err := sim.RunBenchmark(eng, sim.LoadConfig{
		TargetRate: req.TargetRate,
		Duration:   30 * time.Second,
		Seed:       req.Seed,
	}, fleet)
	if err != nil {
		return 0, false, err
	}
	return res.Recorder.Overall().P90, res.Meets(req.SLO), nil
}

// Render prints the advice as a report.
func (a *Advice) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deployment advice: %s, C=%d, %.0f req/s, p90 ≤ %v\n",
		a.Request.Model, a.Request.CatalogSize, a.Request.TargetRate, a.Request.SLO)
	fmt.Fprintf(&b, "%-10s %12s %8s %12s %10s %10s\n", "instance", "capacity", "count", "cost/month", "p90", "verdict")
	for _, c := range a.Candidates {
		verdict := "infeasible"
		if c.Feasible && c.Validated {
			verdict = "ok"
		} else if c.Feasible {
			verdict = "failed e2e"
		}
		fmt.Fprintf(&b, "%-10s %10.0f/s %8d %12s %10s %10s\n",
			c.Instance, c.Capacity, c.Count, fmt.Sprintf("$%.0f", c.MonthlyUSD),
			c.P90.Round(time.Millisecond), verdict)
	}
	if a.Feasible {
		fmt.Fprintf(&b, "recommendation: %s\n", a.Best.Option)
	} else {
		fmt.Fprintf(&b, "recommendation: no feasible deployment within the SLO\n")
	}
	if best, ok := costmodel.CheapestCloud(a.CloudOptions); ok {
		fmt.Fprintf(&b, "cheapest across clouds: %s\n", best)
	}
	return b.String()
}
