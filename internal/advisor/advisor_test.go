package advisor

import (
	"etude/internal/costmodel"
	"strings"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	if _, err := Advise(Request{CatalogSize: 100, TargetRate: 10}); err == nil {
		t.Fatalf("missing model accepted")
	}
	if _, err := Advise(Request{Model: "core", TargetRate: 10}); err == nil {
		t.Fatalf("zero catalog accepted")
	}
	if _, err := Advise(Request{Model: "core", CatalogSize: 100}); err == nil {
		t.Fatalf("zero rate accepted")
	}
	if _, err := Advise(Request{Model: "ghost", CatalogSize: 100, TargetRate: 10}); err == nil {
		t.Fatalf("unknown model accepted")
	}
	if _, err := Advise(Request{Model: "core", CatalogSize: 100, TargetRate: 10, Instances: []string{"tpu"}}); err == nil {
		t.Fatalf("unknown instance accepted")
	}
}

// TestSmallWorkloadPicksCPU: the groceries-small workload must be served by
// a single $108 CPU machine, as in Table I.
func TestSmallWorkloadPicksCPU(t *testing.T) {
	advice, err := Advise(Request{
		Model:       "gru4rec",
		CatalogSize: 10_000,
		TargetRate:  100,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !advice.Feasible {
		t.Fatalf("small workload must be feasible")
	}
	if advice.Best.Instance != "cpu" || advice.Best.Count != 1 {
		t.Fatalf("best = %+v, want 1×cpu", advice.Best.Option)
	}
	if advice.Best.MonthlyUSD > 110 {
		t.Fatalf("cost = $%.2f, want $108.09", advice.Best.MonthlyUSD)
	}
	if !advice.Best.Validated || advice.Best.P90 <= 0 {
		t.Fatalf("winner not validated end-to-end: %+v", advice.Best)
	}
}

// TestPlatformWorkloadPicksA100: at C=2e7 and 1,000 req/s only A100 fleets
// work.
func TestPlatformWorkloadPicksA100(t *testing.T) {
	advice, err := Advise(Request{
		Model:       "gru4rec",
		CatalogSize: 20_000_000,
		TargetRate:  1000,
		Instances:   []string{"gpu-t4", "gpu-a100"},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !advice.Feasible {
		t.Fatalf("platform workload must be feasible on A100s")
	}
	if advice.Best.Instance != "gpu-a100" {
		t.Fatalf("best instance = %s, want gpu-a100", advice.Best.Instance)
	}
	if advice.Best.Count < 2 || advice.Best.Count > 4 {
		t.Fatalf("A100 count = %d, paper uses 3", advice.Best.Count)
	}
	for _, c := range advice.Candidates {
		if c.Instance == "gpu-t4" && c.Validated {
			t.Fatalf("T4 must not validate the platform workload")
		}
	}
}

func TestImpossibleWorkload(t *testing.T) {
	// 1M req/s is beyond any single-digit fleet; Plan caps are generous but
	// capacity search cannot reach it, making CPU fleets enormous. The
	// advisor should still answer (with a huge fleet) or mark infeasible —
	// either way, it must not error.
	advice, err := Advise(Request{
		Model:       "gru4rec",
		CatalogSize: 20_000_000,
		TargetRate:  1000,
		Instances:   []string{"cpu"},
		SLO:         time.Millisecond, // impossible SLO
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if advice.Feasible {
		t.Fatalf("1ms SLO at C=2e7 on CPU must be infeasible")
	}
	if !strings.Contains(advice.Render(), "no feasible deployment") {
		t.Fatalf("render must state infeasibility")
	}
}

func TestRenderListsAllCandidates(t *testing.T) {
	advice, err := Advise(Request{
		Model:       "stamp",
		CatalogSize: 100_000,
		TargetRate:  250,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := advice.Render()
	for _, inst := range []string{"cpu", "gpu-t4", "gpu-a100"} {
		if !strings.Contains(out, inst) {
			t.Fatalf("render missing %s:\n%s", inst, out)
		}
	}
	if !strings.Contains(out, "recommendation:") {
		t.Fatalf("render missing recommendation")
	}
}

// TestCrossCloudOptions: the advisor prices validated fleets on all three
// clouds, and invalidated instance types are offered nowhere.
func TestCrossCloudOptions(t *testing.T) {
	advice, err := Advise(Request{
		Model:       "gru4rec",
		CatalogSize: 10_000_000,
		TargetRate:  1000,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.CloudOptions) != 9 {
		t.Fatalf("cloud options = %d, want 9", len(advice.CloudOptions))
	}
	best, ok := costmodelCheapest(advice)
	if !ok {
		t.Fatalf("no cross-cloud winner")
	}
	// AWS T4s undercut GCP T4s at this scale.
	if best.Instance.Cloud != "aws" || best.Instance.Device != "gpu-t4" {
		t.Fatalf("cross-cloud best = %+v", best)
	}
	// CPU failed validation → infeasible on every cloud.
	for _, o := range advice.CloudOptions {
		if o.Instance.Device == "cpu" && o.Feasible {
			t.Fatalf("cpu offered despite failing validation: %+v", o)
		}
	}
}

func costmodelCheapest(a *Advice) (costmodel.CloudOption, bool) {
	return costmodel.CheapestCloud(a.CloudOptions)
}
