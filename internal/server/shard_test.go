package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/shard"
	"etude/internal/trace"
)

// Sharded serving must be invisible to clients: the scatter-gather path
// returns the same items, scores and order as the plain model.
func TestShardedServerMatchesUnsharded(t *testing.T) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 2_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Options{Workers: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, session := range [][]int64{{1}, {7, 900, 1999}, {3, 3, 250, 42}} {
		resp, out := predict(t, ts, httpapi.PredictRequest{SessionID: 1, Items: session})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		want := m.Recommend(session)
		if len(out.Items) != len(want) {
			t.Fatalf("session %v: %d items, want %d", session, len(out.Items), len(want))
		}
		for i, rec := range want {
			if out.Items[i] != rec.Item || out.Scores[i] != rec.Score {
				t.Fatalf("session %v item %d: (%d, %v), want (%d, %v)",
					session, i, out.Items[i], out.Scores[i], rec.Item, rec.Score)
			}
		}
	}
}

// The sharded path's stages — scatter, wait, merge — and the hedge counters
// must round-trip through the /metrics exposition.
func TestShardedMetricsParseBack(t *testing.T) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 2_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var hs shard.HedgeStats
	hs.RecordSent()
	hs.RecordSent()
	hs.RecordWin()
	hs.RecordCancelled()
	tr := trace.New(trace.Options{})
	s, err := New(m, Options{Workers: 2, Shards: 4, Tracer: tr, MetricsExtra: hs.WriteMetrics})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 5
	for i := 0; i < n; i++ {
		resp := predictWithID(t, ts, "", httpapi.PredictRequest{Items: []int64{1, 2, 3}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + httpapi.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := metrics.ParsePromText(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse back: %v", err)
	}
	byKey := map[string]float64{}
	for _, smp := range samples {
		byKey[smp.Key()] = smp.Value
	}
	for _, stage := range []string{"encoder-forward", "shard-scatter", "shard-wait", "shard-merge", "serialize"} {
		key := `etude_stage_seconds_count{stage="` + stage + `"}`
		if byKey[key] != n {
			t.Fatalf("stage %s count = %v, want %d (keys: %v)", stage, byKey[key], n, keysOf(byKey))
		}
	}
	if byKey["etude_shards"] != 4 {
		t.Fatalf("etude_shards = %v, want 4", byKey["etude_shards"])
	}
	if byKey["etude_hedges_sent_total"] != 2 || byKey["etude_hedge_wins_total"] != 1 ||
		byKey["etude_hedge_cancelled_total"] != 1 {
		t.Fatalf("hedge counters = %v/%v/%v, want 2/1/1",
			byKey["etude_hedges_sent_total"], byKey["etude_hedge_wins_total"], byKey["etude_hedge_cancelled_total"])
	}
}

func TestShardOptionsValidation(t *testing.T) {
	m, _ := model.New("gru4rec", model.Config{CatalogSize: 100, Seed: 1})
	part := shard.Partition{Index: 0, From: 0, To: 50}
	if _, err := New(m, Options{Shards: 2, Partition: &part}); err == nil {
		t.Fatal("Shards and Partition together must be rejected")
	}
	// RepeatNet mixes a session-local repeat distribution into its scores —
	// no encoder/MIPS decomposition, so it can neither shard nor partition.
	rn, err := model.New("repeatnet", model.Config{CatalogSize: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(rn, Options{Shards: 2}); err == nil {
		t.Fatal("sharding a non-Encoder model must be rejected")
	}
	if _, err := New(rn, Options{Partition: &part}); err == nil {
		t.Fatal("partitioning a non-Encoder model must be rejected")
	}
}

// A gateway-front server relays the scatter-gather tier's coverage
// metadata to clients: a partial merge answers 200 with
// X-Degraded: partial and the X-Coverage fraction stamped, and the
// /metrics exposition carries the partial-serving counters.
func TestGatewayFrontServerStampsDegradedHeaders(t *testing.T) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 2_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := shard.Plan(2_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	pickers := make([]shard.Picker, len(parts))
	for i, part := range parts {
		if i == 3 {
			pickers[i] = shard.NewStaticPicker() // shard 3: blacked out
			continue
		}
		pod, err := New(m, Options{Workers: 2, Partition: &part})
		if err != nil {
			t.Fatal(err)
		}
		pts := httptest.NewServer(pod.Handler())
		t.Cleanup(func() { pts.Close(); pod.Close() })
		pickers[i] = shard.NewStaticPicker(pts.URL)
	}
	gw, err := shard.NewGateway(pickers, shard.GatewayConfig{
		K:      m.Config().TopK,
		Policy: shard.Policy{Mode: shard.PolicyPartial, MinCoverage: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nil, Options{Gateway: gw})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := predict(t, ts, httpapi.PredictRequest{SessionID: 1, Items: []int64{7, 900}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 from a partial merge", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderDegraded); got != httpapi.DegradedPartial {
		t.Fatalf("X-Degraded = %q, want %q", got, httpapi.DegradedPartial)
	}
	cov, ok := httpapi.Coverage(resp.Header)
	if !ok || cov != 0.75 {
		t.Fatalf("X-Coverage = %v (ok=%v), want 0.75", cov, ok)
	}
	if len(out.Items) == 0 {
		t.Fatal("partial response carried no recommendations")
	}

	mresp, err := http.Get(ts.URL + httpapi.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	samples, err := metrics.ParsePromText(mresp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse back: %v", err)
	}
	byKey := map[string]float64{}
	for _, smp := range samples {
		byKey[smp.Key()] = smp.Value
	}
	if byKey["etude_shards"] != 4 {
		t.Fatalf("etude_shards = %v, want 4", byKey["etude_shards"])
	}
	if byKey["etude_partial_responses_total"] != 1 {
		t.Fatalf("etude_partial_responses_total = %v, want 1", byKey["etude_partial_responses_total"])
	}
	if byKey["etude_coverage_last"] != 0.75 {
		t.Fatalf("etude_coverage_last = %v, want 0.75", byKey["etude_coverage_last"])
	}
}

// Gateway mode is a pure relay front: it must reject a local model or any
// local scatter/partition/batching options alongside the gateway.
func TestGatewayFrontOptionsValidation(t *testing.T) {
	gw, err := shard.NewGateway([]shard.Picker{shard.NewStaticPicker("http://x")}, shard.GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := model.New("gru4rec", model.Config{CatalogSize: 100, Seed: 1})
	if _, err := New(m, Options{Gateway: gw}); err == nil {
		t.Fatal("a gateway front with a local model must be rejected")
	}
	if _, err := New(nil, Options{Gateway: gw, Shards: 2}); err == nil {
		t.Fatal("Gateway with Shards must be rejected")
	}
	part := shard.Partition{Index: 0, From: 0, To: 50}
	if _, err := New(nil, Options{Gateway: gw, Partition: &part}); err == nil {
		t.Fatal("Gateway with Partition must be rejected")
	}
}

// A partition pod serves the full encoder but only its catalog rows: its
// responses are exactly the partition-local slice of the global results.
func TestPartitionServerServesPartialTopK(t *testing.T) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 1_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	enc := m.(model.Encoder)
	part := shard.Partition{Index: 1, From: 500, To: 1_000}
	s, err := New(m, Options{Workers: 1, Partition: &part})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	session := []int64{12, 600, 999}
	resp, out := predict(t, ts, httpapi.PredictRequest{SessionID: 1, Items: session})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	r, err := shard.PartitionRetriever(enc, part)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Retrieve(enc.Encode(session), enc.Config().TopK)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int64, len(out.Items))
	copy(got, out.Items)
	wantItems := make([]int64, len(want))
	for i, rec := range want {
		wantItems[i] = rec.Item
		if rec.Item < int64(part.From) || rec.Item >= int64(part.To) {
			t.Fatalf("partition result %d outside [%d, %d)", rec.Item, part.From, part.To)
		}
	}
	if !reflect.DeepEqual(got, wantItems) {
		t.Fatalf("partition pod items = %v, want %v", got, wantItems)
	}
}
