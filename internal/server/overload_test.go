package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"etude/internal/httpapi"
	"etude/internal/leakcheck"
	"etude/internal/overload"
	"etude/internal/trace"
)

// predictWithDeadline posts a prediction stamped with an absolute deadline.
func predictWithDeadline(t *testing.T, ts *httptest.Server, deadline time.Time, req httpapi.PredictRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+httpapi.PredictPath, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpapi.SetDeadlineHeader(hreq.Header, deadline)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestExpiredDeadlineAnswered504BeforeEncoder(t *testing.T) {
	leakcheck.Check(t)
	tr := trace.New(trace.Options{})
	s, _ := New(testModel(t), Options{Tracer: tr})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictWithDeadline(t, ts, time.Now().Add(-time.Second), httpapi.PredictRequest{Items: []int64{1, 2}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 for an already-expired deadline", resp.StatusCode)
	}
	if got := s.DeadlineExpired(); got != 1 {
		t.Fatalf("DeadlineExpired() = %d, want 1", got)
	}
	// The whole point of dropping expired work: zero encoder FLOPs spent.
	if n := tr.StageSnapshot(trace.StageEncoderForward).Count; n != 0 {
		t.Fatalf("encoder-forward spans = %d for an expired request, want 0", n)
	}
}

func TestFutureDeadlineServesNormally(t *testing.T) {
	leakcheck.Check(t)
	s, _ := New(testModel(t), Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictWithDeadline(t, ts, time.Now().Add(10*time.Second), httpapi.PredictRequest{Items: []int64{1, 2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with budget to spare", resp.StatusCode)
	}
}

func TestAdaptiveLimiterShedsAtLimit(t *testing.T) {
	leakcheck.Check(t)
	lim := overload.NewLimiter(overload.LimiterConfig{Initial: 1, Min: 1})
	s, _ := New(testModel(t), Options{Limiter: lim})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Saturate the limit from outside the server, as a second in-flight
	// request would.
	if !lim.TryAcquire() {
		t.Fatal("fresh limiter refused its first slot")
	}
	resp, _ := predict(t, ts, httpapi.PredictRequest{Items: []int64{1}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 past the adaptive limit", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("adaptive shed must carry Retry-After")
	}
	if s.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", s.Shed())
	}
	lim.Release(time.Millisecond, false)

	// With the slot free the same request serves, and its latency trains
	// the limiter's baseline.
	resp, _ = predict(t, ts, httpapi.PredictRequest{Items: []int64{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d after release, want 200", resp.StatusCode)
	}
	if lim.Inflight() != 0 {
		t.Fatalf("Inflight() = %d after completion, want 0 (slot leaked)", lim.Inflight())
	}
}

func TestLimiterReleasedOnEveryOutcome(t *testing.T) {
	leakcheck.Check(t)
	lim := overload.NewLimiter(overload.LimiterConfig{Initial: 4})
	s, _ := New(testModel(t), Options{Limiter: lim})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Success, bad request, and expired deadline must all return their slot.
	predict(t, ts, httpapi.PredictRequest{Items: []int64{1}})
	predict(t, ts, httpapi.PredictRequest{Items: []int64{-5}})
	predictWithDeadline(t, ts, time.Now().Add(-time.Second), httpapi.PredictRequest{Items: []int64{1}})
	if lim.Inflight() != 0 {
		t.Fatalf("Inflight() = %d after mixed outcomes, want 0", lim.Inflight())
	}
}
