package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"etude/internal/batching"
	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/sched"
)

func predictTenant(t *testing.T, ts *httptest.Server, tenant string, req httpapi.PredictRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, ts.URL+httpapi.PredictPath, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hr.Header.Set(httpapi.HeaderTenant, tenant)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestSchedServingEndToEnd(t *testing.T) {
	m := testModel(t)
	s, err := New(m, Options{Workers: 2, Sched: &sched.Config{
		Tenants:    []sched.TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
		MaxBatch:   8,
		FlushEvery: time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictTenant(t, ts, "a", httpapi.PredictRequest{SessionID: 1, Items: []int64{3, 17, 42}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderTenant); got != "a" {
		t.Fatalf("tenant echo = %q, want %q", got, "a")
	}
	var out httpapi.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Scheduled serving must be bit-identical to direct model output.
	direct := m.Recommend([]int64{3, 17, 42})
	for i := range direct {
		if out.Items[i] != direct[i].Item {
			t.Fatalf("served item %d != direct %d at %d", out.Items[i], direct[i].Item, i)
		}
	}
	var served int64
	for _, st := range s.TenantStats() {
		if st.Tenant == "a" {
			served = st.Served
		}
	}
	if served != 1 {
		t.Fatalf("tenant a served = %d, want 1", served)
	}
}

// A request with no X-Tenant header but a body-carried tenant label is
// admitted under that tenant and the label is echoed (header-stripping
// transports), mirroring the request-id fallback.
func TestSchedBodyTenantFallback(t *testing.T) {
	s, err := New(testModel(t), Options{Workers: 1, Sched: &sched.Config{MaxBatch: 4, FlushEvery: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictTenant(t, ts, "", httpapi.PredictRequest{SessionID: 2, Items: []int64{5}, Tenant: "carried"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderTenant); got != "carried" {
		t.Fatalf("tenant echo = %q, want %q", got, "carried")
	}
	found := false
	for _, st := range s.TenantStats() {
		if st.Tenant == "carried" && st.Served == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("body-carried tenant not accounted: %+v", s.TenantStats())
	}
}

// An anonymous request (no tenant anywhere) lands in the default queue and
// gets no tenant echo.
func TestSchedAnonymousDefaultTenant(t *testing.T) {
	s, err := New(testModel(t), Options{Workers: 1, Sched: &sched.Config{MaxBatch: 4, FlushEvery: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictTenant(t, ts, "", httpapi.PredictRequest{SessionID: 3, Items: []int64{7}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderTenant); got != "" {
		t.Fatalf("anonymous request echoed tenant %q", got)
	}
	found := false
	for _, st := range s.TenantStats() {
		if st.Tenant == sched.DefaultTenant && st.Served == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("anonymous request not under default tenant: %+v", s.TenantStats())
	}
}

// A tenant queue at its bound sheds with 429 + Retry-After, echoing the
// tenant — per-tenant admission control surfaces exactly like the global
// kind.
func TestSchedShedAnswers429WithTenantEcho(t *testing.T) {
	s, err := New(testModel(t), Options{Workers: 1, Sched: &sched.Config{
		MaxBatch:   64,
		FlushEvery: time.Hour, // nothing flushes during the test
		MaxQueue:   1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// Fill tenant hog's queue (the request parks until Close).
	parked := make(chan *http.Response, 1)
	go func() {
		body, _ := json.Marshal(httpapi.PredictRequest{SessionID: 4, Items: []int64{1}})
		hr, _ := http.NewRequest(http.MethodPost, ts.URL+httpapi.PredictPath, bytes.NewReader(body))
		hr.Header.Set(httpapi.HeaderTenant, "hog")
		resp, err := http.DefaultClient.Do(hr)
		if err == nil {
			resp.Body.Close()
			parked <- resp
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.sched.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	resp := predictTenant(t, ts, "hog", httpapi.PredictRequest{SessionID: 5, Items: []int64{2}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderTenant); got != "hog" {
		t.Fatalf("shed response tenant echo = %q, want %q", got, "hog")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if s.Shed() == 0 {
		t.Fatal("global shed counter not incremented")
	}
	// Closing the dispatcher releases the parked request with 503.
	s.Close()
	select {
	case pr := <-parked:
		if pr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("parked request status = %d, want 503", pr.StatusCode)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked request never released")
	}
	ts.Close()
}

// Per-tenant scheduling counters are exposed on /metrics and the
// exposition parses back.
func TestSchedMetricsParseBack(t *testing.T) {
	s, err := New(testModel(t), Options{Workers: 2, Sched: &sched.Config{
		Tenants:    []sched.TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
		MaxBatch:   8,
		FlushEvery: time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if resp := predictTenant(t, ts, "a", httpapi.PredictRequest{Items: []int64{1, 2}}); resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	if resp := predictTenant(t, ts, "b", httpapi.PredictRequest{Items: []int64{3}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + httpapi.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := metrics.ParsePromText(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse back: %v", err)
	}
	byKey := map[string]float64{}
	for _, smp := range samples {
		byKey[smp.Key()] = smp.Value
	}
	if v := byKey[`etude_tenant_served_total{tenant="a"}`]; v != 3 {
		t.Fatalf(`etude_tenant_served_total{tenant="a"} = %v, want 3`, v)
	}
	if v := byKey[`etude_tenant_served_total{tenant="b"}`]; v != 1 {
		t.Fatalf(`etude_tenant_served_total{tenant="b"} = %v, want 1`, v)
	}
	if v := byKey[`etude_tenant_weight{tenant="a"}`]; v != 3 {
		t.Fatalf(`etude_tenant_weight{tenant="a"} = %v, want 3`, v)
	}
	for _, fam := range []string{
		`etude_tenant_shed_total{tenant="a"}`,
		`etude_tenant_deadline_miss_total{tenant="a"}`,
		`etude_tenant_pending{tenant="a"}`,
	} {
		if v, ok := byKey[fam]; !ok || v != 0 {
			t.Fatalf("%s = %v (present %v), want 0", fam, v, ok)
		}
	}
	// The scheduled path attributes its wait to the sched-wait stage.
	// (Zero-duration observations are skipped, so only require the family
	// when the batch waited at all — but the total count must be nonzero
	// across stages.)
	if byKey["etude_requests_total"] != 4 {
		t.Fatalf("etude_requests_total = %v, want 4", byKey["etude_requests_total"])
	}
}

// Batch and Sched cannot be combined: the scheduler does its own batching.
func TestSchedOptionExclusivity(t *testing.T) {
	_, err := New(testModel(t), Options{
		Batch: &batching.Config{MaxBatch: 4, FlushEvery: time.Millisecond},
		Sched: &sched.Config{MaxBatch: 4, FlushEvery: time.Millisecond},
	})
	if err == nil {
		t.Fatal("Batch+Sched accepted")
	}
}
