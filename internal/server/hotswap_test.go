package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etude/internal/deploy"
	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/objstore"
)

// publishTestRelease stages one release (gru4rec, small catalog) with a
// weight archive derived from seed and returns its version.
func publishTestRelease(t *testing.T, store *deploy.Store, seed int64) int {
	t.Helper()
	m, err := model.New("gru4rec", model.Config{CatalogSize: 300, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	weights, err := model.SaveWeights(m)
	if err != nil {
		t.Fatal(err)
	}
	manifest := model.Manifest{Model: "gru4rec", Config: model.Config{CatalogSize: 300, Seed: seed}}
	rel, err := store.Publish(manifest, weights, "")
	if err != nil {
		t.Fatal(err)
	}
	return rel.Version
}

func TestLoadFromReleasesServesCurrent(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	v1 := publishTestRelease(t, store, 1)
	if err := store.Promote(v1); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFromReleases(store, 0, 0, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ModelVersion() != v1 {
		t.Fatalf("ModelVersion = %d, want %d", s.ModelVersion(), v1)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := predictWithID(t, ts, "", httpapi.PredictRequest{Items: []int64{1, 2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderModelVersion); got != strconv.Itoa(v1) {
		t.Fatalf("%s = %q, want %d", httpapi.HeaderModelVersion, got, v1)
	}
}

func TestAdminDeploySwapsAndRefusesCorrupt(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	v1 := publishTestRelease(t, store, 1)
	if err := store.Promote(v1); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFromReleases(store, 0, 0, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	deployVersion := func(v int) *http.Response {
		t.Helper()
		body, _ := json.Marshal(httpapi.DeployRequest{Version: v})
		resp, err := http.Post(ts.URL+httpapi.DeployPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// A good release swaps in and stamps subsequent responses.
	v2 := publishTestRelease(t, store, 2)
	if resp := deployVersion(v2); resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy v2 status = %d", resp.StatusCode)
	}
	if s.ModelVersion() != v2 || s.Swaps() != 1 {
		t.Fatalf("after deploy: version=%d swaps=%d", s.ModelVersion(), s.Swaps())
	}
	resp := predictWithID(t, ts, "", httpapi.PredictRequest{Items: []int64{1}})
	if got := resp.Header.Get(httpapi.HeaderModelVersion); got != strconv.Itoa(v2) {
		t.Fatalf("%s = %q, want %d", httpapi.HeaderModelVersion, got, v2)
	}

	// A bit-flipped release must answer 422, never serve, and end up
	// quarantined in the store.
	v3 := publishTestRelease(t, store, 3)
	rel3, err := store.Get(v3)
	if err != nil {
		t.Fatal(err)
	}
	wkey := rel3.Artifacts[0].Key
	blob, err := store.Bucket().Get(wkey)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x10
	if err := store.Bucket().Put(wkey, blob); err != nil {
		t.Fatal(err)
	}
	if resp := deployVersion(v3); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("deploy corrupted v3 status = %d, want 422", resp.StatusCode)
	}
	if s.ModelVersion() != v2 {
		t.Fatalf("corrupted release displaced the incumbent: serving v%d", s.ModelVersion())
	}
	if s.VerifyFailures() != 1 {
		t.Fatalf("VerifyFailures = %d, want 1", s.VerifyFailures())
	}
	if _, q := store.QuarantineReason(v3); !q {
		t.Fatal("corrupted release not quarantined in the store")
	}
	// Retrying answers 409 now: the quarantine marker outlives the attempt.
	if resp := deployVersion(v3); resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-deploy quarantined v3 status = %d, want 409", resp.StatusCode)
	}
	// An absent version answers 404.
	if resp := deployVersion(99); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deploy absent version status = %d, want 404", resp.StatusCode)
	}
}

func TestHotSwapUnderLoadDropsNothing(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	v1 := publishTestRelease(t, store, 1)
	if err := store.Promote(v1); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFromReleases(store, 0, 0, Options{Workers: 4, MaxPending: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hammer predictions from several clients while swapping versions in the
	// middle: every response must be a 200 stamped with v1 or v2 — no
	// errors, no unversioned responses, nothing dropped.
	const clients = 4
	var wg sync.WaitGroup
	var failures atomic.Int64
	versions := [2]atomic.Int64{}
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1, 2, 3}})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					return
				}
				ver := resp.Header.Get(httpapi.HeaderModelVersion)
				resp.Body.Close()
				switch {
				case resp.StatusCode != http.StatusOK:
					failures.Add(1)
				case ver == "1":
					versions[0].Add(1)
				case ver == "2":
					versions[1].Add(1)
				default:
					failures.Add(1)
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	v2 := publishTestRelease(t, store, 2)
	if err := s.ApplyRelease(v2); err != nil {
		t.Fatalf("ApplyRelease under load: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed or lost their version during the swap", n)
	}
	if versions[0].Load() == 0 || versions[1].Load() == 0 {
		t.Fatalf("expected traffic on both versions across the swap, got v1=%d v2=%d",
			versions[0].Load(), versions[1].Load())
	}
}

func TestWatchReleasesFollowsPromotions(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	v1 := publishTestRelease(t, store, 1)
	if err := store.Promote(v1); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFromReleases(store, 0, 5*time.Millisecond, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	v2 := publishTestRelease(t, store, 2)
	if err := store.Promote(v2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.ModelVersion() != v2 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never converged onto v%d (serving v%d)", v2, s.ModelVersion())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Swaps() == 0 {
		t.Fatal("watcher converged without counting a swap")
	}
}

func TestApplyReleaseWithoutStore(t *testing.T) {
	s, _ := New(testModel(t), Options{})
	defer s.Close()
	if err := s.ApplyRelease(1); err == nil {
		t.Fatal("ApplyRelease without a release store must fail")
	}
	// And the admin endpoint answers 404 rather than pretending.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(httpapi.DeployRequest{Version: 1})
	resp, err := http.Post(ts.URL+httpapi.DeployPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deploy without store status = %d, want 404", resp.StatusCode)
	}
}

func TestVersionMetricsExposed(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	v1 := publishTestRelease(t, store, 1)
	if err := store.Promote(v1); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFromReleases(store, 0, 0, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		if resp := predictWithID(t, ts, "", httpapi.PredictRequest{Items: []int64{1}}); resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + httpapi.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := metrics.ParsePromText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, smp := range samples {
		byKey[smp.Key()] = smp.Value
	}
	if byKey["etude_model_version"] != float64(v1) {
		t.Fatalf("etude_model_version = %v, want %d", byKey["etude_model_version"], v1)
	}
	reqKey := `etude_version_requests_total{version="` + strconv.Itoa(v1) + `"}`
	if byKey[reqKey] != 3 {
		t.Fatalf("%s = %v, want 3", reqKey, byKey[reqKey])
	}
	latKey := `etude_version_request_seconds_count{version="` + strconv.Itoa(v1) + `"}`
	if byKey[latKey] != 3 {
		t.Fatalf("%s = %v, want 3", latKey, byKey[latKey])
	}
	if _, ok := byKey["etude_artifact_verify_failures_total"]; !ok {
		t.Fatal("missing etude_artifact_verify_failures_total")
	}
	if _, ok := byKey["etude_model_swaps_total"]; !ok {
		t.Fatal("missing etude_model_swaps_total")
	}
}

func TestLoadFromReleasesRefusesCorruptCurrent(t *testing.T) {
	store := deploy.NewStore(objstore.NewMemBucket())
	v1 := publishTestRelease(t, store, 1)
	if err := store.Promote(v1); err != nil {
		t.Fatal(err)
	}
	rel, err := store.Get(v1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := store.Bucket().Get(rel.Artifacts[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	blob[0] ^= 0xFF
	if err := store.Bucket().Put(rel.Artifacts[0].Key, blob); err != nil {
		t.Fatal(err)
	}
	var ve *deploy.VerifyError
	if _, err := LoadFromReleases(store, 0, 0, Options{}); !errors.As(err, &ve) {
		t.Fatalf("LoadFromReleases over corrupt CURRENT = %v, want *deploy.VerifyError", err)
	}
}
