// Package server implements ETUDE's lightweight inference server — the Go
// analogue of the paper's Actix-based Rust runtime. It serves PyTorch-style
// SBR models (internal/model) over HTTP with a bounded worker pool,
// optional JIT-compiled execution paths, optional request batching
// (internal/batching), model deployment from an object-store bucket, and
// inference-duration metrics in response headers.
//
// The design goal is identical to the paper's: near-zero serving overhead.
// Requests are decoded, dispatched to a worker slot, executed in-process and
// encoded — no inter-process hand-off, no per-request interpreter, which is
// precisely what the TorchServe baseline (internal/torchserve) pays for.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"etude/internal/batching"
	"etude/internal/httpapi"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/topk"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent inference (default: GOMAXPROCS).
	Workers int
	// JIT serves JIT-compiled execution plans when the model supports them
	// (buffer reuse, fused steps); models that cannot be compiled — in the
	// paper, LightSANs — transparently fall back to eager execution.
	JIT bool
	// Batch enables request batching with the given config. Nil disables
	// batching (the CPU serving configuration).
	Batch *batching.Config
	// MaxPending bounds requests admitted but not yet answered (admission
	// control): requests beyond the bound are shed with 429 + Retry-After
	// instead of queueing without limit. 0 defaults to 16× Workers;
	// negative disables the bound (the original unbounded behaviour).
	MaxPending int
	// DegradeAt is the pending-request watermark at which prediction
	// requests are answered from the precomputed fallback list instead of
	// the model, flagged with the X-Degraded header (graceful
	// degradation). 0 disables degradation. Set it below MaxPending so the
	// server degrades before it sheds.
	DegradeAt int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxPending == 0 {
		o.MaxPending = 16 * o.Workers
	}
	return o
}

// predictor is one worker slot's inference function.
type predictor func(session []int64) []topk.Result

// Server serves one deployed model (or a static response) over HTTP.
type Server struct {
	opts    Options
	mdl     model.Model // nil in static mode
	pool    chan predictor
	batcher *batching.Batcher[[]int64, []topk.Result]
	ready   atomic.Bool
	// draining flips when BeginDrain is called: readiness probes answer 503
	// (routers stop sending new work) while the process stays live and
	// admitted predictions run to completion.
	draining atomic.Bool
	// pending counts admitted-but-unanswered prediction requests — the
	// admission-control and degradation-watermark signal.
	pending atomic.Int64
	// shed and degraded count resilience actions for tests and ops.
	shed     atomic.Int64
	degraded atomic.Int64
	// fallback is the precomputed popularity-style response served while
	// degraded (nil in static mode).
	fallback []topk.Result
	// JITActive reports whether compiled plans are actually in use (false
	// when the model refused compilation).
	JITActive bool
}

// New builds a server for m. The model is wrapped per worker: compiled
// execution plans hold private buffers and must not be shared.
func New(m model.Model, opts Options) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("server: nil model")
	}
	opts = opts.withDefaults()
	s := &Server{opts: opts, mdl: m, pool: make(chan predictor, opts.Workers)}
	for i := 0; i < opts.Workers; i++ {
		s.pool <- s.newPredictor()
	}
	if opts.Batch != nil {
		b, err := batching.New(*opts.Batch, s.runBatch)
		if err != nil {
			return nil, err
		}
		s.batcher = b
	}
	// Precompute the degraded-mode fallback once: a popularity-style static
	// recommendation list that costs a map lookup to serve, not a model
	// execution.
	if opts.DegradeAt > 0 {
		s.fallback = m.Recommend([]int64{0})
	}
	s.ready.Store(true)
	return s, nil
}

// Shed returns how many requests admission control refused (429).
func (s *Server) Shed() int64 { return s.shed.Load() }

// BeginDrain moves the server into the draining state: the readiness probe
// (/ping) starts answering 503 so balancers and service routers take the
// pod out of rotation, while the liveness probe (/live) keeps answering 200
// and prediction requests — including ones that race past the routing
// change — are still served. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of admitted-but-unanswered prediction
// requests — the quantity a graceful shutdown waits on.
func (s *Server) InFlight() int64 { return s.pending.Load() }

// DegradedCount returns how many responses the fallback responder served.
func (s *Server) DegradedCount() int64 { return s.degraded.Load() }

// NewStatic builds the "empty response, no computation" server used by the
// infrastructure validation experiment (paper Fig 2).
func NewStatic() *Server {
	s := &Server{opts: Options{}.withDefaults()}
	s.ready.Store(true)
	return s
}

// LoadFromBucket deploys a model from a serialised manifest in a bucket —
// the paper's "deploy serialised PyTorch models from Google storage
// buckets".
func LoadFromBucket(b objstore.Bucket, key string, opts Options) (*Server, error) {
	data, err := b.Get(key)
	if err != nil {
		return nil, fmt.Errorf("server: fetching model artifact: %w", err)
	}
	manifest, err := model.UnmarshalManifest(data)
	if err != nil {
		return nil, err
	}
	m, err := manifest.Load()
	if err != nil {
		return nil, err
	}
	if manifest.WeightsKey != "" {
		weights, err := b.Get(manifest.WeightsKey)
		if err != nil {
			return nil, fmt.Errorf("server: fetching weights: %w", err)
		}
		if err := model.LoadWeights(m, weights); err != nil {
			return nil, fmt.Errorf("server: loading weights: %w", err)
		}
	}
	return New(m, opts)
}

func (s *Server) newPredictor() predictor {
	if s.opts.JIT {
		if jc, ok := s.mdl.(model.JITCompilable); ok {
			s.JITActive = true
			return jc.CompiledRecommend()
		}
	}
	return s.mdl.Recommend
}

// Model returns the deployed model (nil in static mode).
func (s *Server) Model() model.Model { return s.mdl }

// runBatch executes a batch on a single worker slot, sequentially — the CPU
// analogue of one fused accelerator kernel sequence.
func (s *Server) runBatch(sessions [][]int64) [][]topk.Result {
	p := <-s.pool
	defer func() { s.pool <- p }()
	out := make([][]topk.Result, len(sessions))
	for i, session := range sessions {
		out[i] = p(session)
	}
	return out
}

// Close releases the batcher, if any.
func (s *Server) Close() {
	if s.batcher != nil {
		s.batcher.Close()
	}
}

// Handler returns the HTTP routes: POST /predictions, GET /ping
// (readiness) and GET /live (liveness).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(httpapi.ReadyPath, s.handlePing)
	mux.HandleFunc(httpapi.LivePath, s.handleLive)
	mux.HandleFunc(httpapi.PredictPath, s.handlePredict)
	return mux
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !s.ready.Load() {
		http.Error(w, "model loading", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write([]byte("pong")); err != nil {
		return
	}
}

// handleLive is the liveness probe: 200 as long as the process serves HTTP,
// draining or not. Only a dead process fails it — which is exactly the
// signal a supervisor restarts on.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("alive"))
}

// queueDepth returns the server's pending-work signal: the batcher queue
// when batching, the admitted-request count otherwise.
func (s *Server) queueDepth() int {
	if s.batcher != nil {
		return s.batcher.Pending()
	}
	return int(s.pending.Load())
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	// Admission control: past the pending bound the server sheds with 429 +
	// Retry-After instead of queueing without limit — a saturated server
	// answering "not now" fast beats one answering everything late.
	if s.opts.MaxPending > 0 && s.pending.Load() >= int64(s.opts.MaxPending) {
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
		return
	}
	s.pending.Add(1)
	defer s.pending.Add(-1)

	var req httpapi.PredictRequest
	if err := httpapi.ReadJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	start := time.Now()
	var recs []topk.Result
	batch := 1
	degraded := false
	switch {
	case s.mdl == nil:
		// Static mode: no inference at all.
	case s.opts.DegradeAt > 0 && s.queueDepth() > s.opts.DegradeAt:
		// Graceful degradation: past the watermark, answer from the
		// precomputed fallback list instead of joining the model queue.
		recs = s.fallback
		degraded = true
		s.degraded.Add(1)
	case s.batcher != nil:
		out, err := s.batcher.Submit(r.Context(), req.Items)
		if err != nil {
			status := http.StatusServiceUnavailable
			if err == context.Canceled || err == context.DeadlineExceeded {
				status = http.StatusGatewayTimeout
			}
			http.Error(w, err.Error(), status)
			return
		}
		recs = out
	default:
		// A disconnected client must not consume a worker slot: select on
		// the request context while waiting for one, and bail out
		// 499-style (nginx's "client closed request") if the client hung
		// up first.
		select {
		case p := <-s.pool:
			recs = p(req.Items)
			s.pool <- p
		case <-r.Context().Done():
			w.WriteHeader(httpapi.StatusClientClosedRequest)
			return
		}
	}
	inference := time.Since(start)

	resp := httpapi.PredictResponse{
		Items:  make([]int64, len(recs)),
		Scores: make([]float32, len(recs)),
	}
	for i, rec := range recs {
		resp.Items[i] = rec.Item
		resp.Scores[i] = rec.Score
	}
	httpapi.SetDurationHeaders(w.Header(), inference, batch)
	if degraded {
		w.Header().Set(httpapi.HeaderDegraded, "1")
	}
	httpapi.WriteJSON(w, http.StatusOK, resp)
}
