// Package server implements ETUDE's lightweight inference server — the Go
// analogue of the paper's Actix-based Rust runtime. It serves PyTorch-style
// SBR models (internal/model) over HTTP with a bounded worker pool,
// optional JIT-compiled execution paths, optional request batching
// (internal/batching), model deployment from an object-store bucket, and
// inference-duration metrics in response headers.
//
// The design goal is identical to the paper's: near-zero serving overhead.
// Requests are decoded, dispatched to a worker slot, executed in-process and
// encoded — no inter-process hand-off, no per-request interpreter, which is
// precisely what the TorchServe baseline (internal/torchserve) pays for.
//
// Observability: an optional trace.Tracer decomposes each request into
// pipeline stages (admission, queue wait, batch assembly, embedding lookup,
// encoder forward, MIPS top-k — or shard scatter/wait/merge when sharded
// retrieval is enabled — serialize); /metrics exposes the stage and
// end-to-end distributions plus outcome counters in Prometheus text format,
// and Options.Profiling mounts net/http/pprof. With no tracer configured
// the instrumentation costs one nil check per stage (see
// BenchmarkTracingOverhead).
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/batching"
	"etude/internal/buildinfo"
	"etude/internal/deploy"
	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/overload"
	"etude/internal/sched"
	"etude/internal/shard"
	"etude/internal/topk"
	"etude/internal/trace"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent inference (default: GOMAXPROCS).
	Workers int
	// JIT serves JIT-compiled execution plans when the model supports them
	// (buffer reuse, fused steps); models that cannot be compiled — in the
	// paper, LightSANs — transparently fall back to eager execution.
	JIT bool
	// Batch enables request batching with the given config. Nil disables
	// batching (the CPU serving configuration).
	Batch *batching.Config
	// Sched enables the SLO-aware multi-tenant scheduler (internal/sched)
	// in place of the plain batcher: requests are keyed by their X-Tenant
	// header into per-tenant queues drained by weighted deficit round
	// robin, with deadline-aware flush timing and an amortisation-driven
	// target batch size. Mutually exclusive with Batch and Gateway.
	Sched *sched.Config
	// MaxPending bounds requests admitted but not yet answered (admission
	// control): requests beyond the bound are shed with 429 + Retry-After
	// instead of queueing without limit. 0 defaults to 16× Workers;
	// negative disables the bound (the original unbounded behaviour).
	// When Limiter is set this static bound is only a backstop — the
	// adaptive limit is the primary admission signal.
	MaxPending int
	// Limiter, when non-nil, is the AIMD adaptive concurrency limiter used
	// as the primary admission signal: requests past the learned in-flight
	// limit are shed with 429, and every admitted request's latency (or
	// congestion outcome) trains the limit. Replaces hand-tuning MaxPending
	// against the deployment's capacity.
	Limiter *overload.Limiter
	// CoDel, when non-nil, sheds queued work whose sojourn time shows a
	// standing queue: worker-pool waits on the unbatched path, buffered
	// entries at flush on the batching path (it is threaded into the
	// batcher's config automatically). Shed requests answer 503.
	CoDel *overload.CoDel
	// DegradeAt is the pending-request watermark at which prediction
	// requests are answered from the precomputed fallback list instead of
	// the model, flagged with the X-Degraded header (graceful
	// degradation). 0 disables degradation. Set it below MaxPending so the
	// server degrades before it sheds.
	DegradeAt int
	// Tracer records per-request stage spans when non-nil. Nil (the
	// default) disables tracing at near-zero cost.
	Tracer *trace.Tracer
	// Profiling mounts net/http/pprof under /debug/pprof/ on the server's
	// handler. Off by default: profiling endpoints on a production port are
	// opt-in.
	Profiling bool
	// MetricsExtra, when non-nil, is invoked while rendering /metrics so
	// surrounding infrastructure (e.g. the cluster balancer's breaker
	// state, a shard gateway's hedge counters) can append its own families
	// to the exposition.
	MetricsExtra func(*metrics.PromBuilder)
	// Shards, when greater than 1, serves retrieval through the in-process
	// scatter-gather tier (internal/shard): the catalog embedding matrix
	// is partitioned into Shards contiguous shards, each request's session
	// representation is scored by one goroutine per shard, and the partial
	// top-k lists are merged into the exact global top-k — bit-identical
	// to unsharded serving. Requires a model exposing the encoder/MIPS
	// decomposition (model.Encoder); the pool executes eagerly, so JIT is
	// ignored on this path. Mutually exclusive with Partition.
	Shards int
	// Partition, when non-nil, makes this server one shard worker of a
	// cross-pod scatter-gather fleet: the full encoder runs, but the MIPS
	// stage scans only the partition's catalog rows (item ids stay
	// global), and responses carry the partial top-k for a shard.Gateway
	// to merge. Mutually exclusive with Shards.
	Partition *shard.Partition
	// Gateway, when non-nil, makes this server the scatter-gather frontend
	// of a cross-pod sharded fleet: /predictions fans out through the
	// gateway instead of running a local model (pass a nil model), and
	// responses carry the gateway's coverage metadata (X-Coverage, plus
	// X-Degraded: partial under partial-result serving). Mutually exclusive
	// with Shards, Partition and Batch.
	Gateway *shard.Gateway
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxPending == 0 {
		o.MaxPending = 16 * o.Workers
	}
	return o
}

// predictor is one worker slot's inference function. The span is nil when
// tracing is disabled; implementations must treat that as the fast path.
type predictor func(session []int64, sp *trace.Span) []topk.Result

// batchItem is one request travelling through the batcher: the session plus
// its span and enqueue timestamp so the dispatcher can attribute
// batch-assembly and head-of-line wait to the right request.
type batchItem struct {
	session []int64
	sp      *trace.Span
	enq     time.Duration
}

// batchOut carries a batched response plus the size of the batch it was
// served in (for the X-Batch-Size header).
type batchOut struct {
	recs []topk.Result
	size int
}

// modelRuntime is one loaded model version and everything derived from it:
// the per-worker predictor pool (compiled plans hold private buffers and
// must not be shared), the degraded-mode fallback, the in-process shard
// tier, and the version-scoped health counters a canary controller reads.
// Hot-swapping a release installs a whole fresh runtime behind one atomic
// pointer: requests in flight keep the runtime they loaded (its pool
// outlives the swap and is reclaimed by GC once they drain), new requests
// see the new one — zero dropped requests and no lock on the serving path.
type modelRuntime struct {
	mdl       model.Model // nil in static and gateway modes
	pool      chan predictor
	fallback  []topk.Result
	shardPool *shard.Pool
	shardEnc  model.Encoder
	jitActive bool
	// version is the release serving through this runtime (0 when the model
	// did not come from a release store).
	version int
	// served/errs/lat are charged to this runtime only: a swap opens a
	// fresh observation window, so canary health compares versions without
	// the incumbent's history diluting the signal.
	served atomic.Int64
	errs   atomic.Int64
	lat    *metrics.Histogram
}

// Server serves one deployed model (or a static response) over HTTP.
type Server struct {
	opts   Options
	tracer *trace.Tracer
	// rt is the serving runtime — model, worker pool, version counters —
	// swapped atomically by ApplyRelease. Never nil after construction.
	rt      atomic.Pointer[modelRuntime]
	batcher *batching.Batcher[batchItem, batchOut]
	// sched replaces the batcher when Options.Sched is set: the same
	// batch-executing worker path, but batches are assembled by the
	// multi-tenant WDRR scheduler instead of a single FIFO buffer.
	sched *sched.Dispatcher[batchItem, batchOut]
	// releases is the versioned store behind ApplyRelease (nil unless the
	// server was built by LoadFromReleases); watcher polls it for fleet-wide
	// promotions; swapMu serialises swaps (the serving path never takes it).
	releases *deploy.Store
	watcher  *deploy.Watcher
	swapMu   sync.Mutex
	// swaps counts successful hot-swaps; verifyFailures counts releases
	// rejected at load time (checksum mismatch, undecodable weights) — each
	// such release is quarantined in the store and never serves.
	swaps          atomic.Int64
	verifyFailures atomic.Int64
	ready          atomic.Bool
	// draining flips when BeginDrain is called: readiness probes answer 503
	// (routers stop sending new work) while the process stays live and
	// admitted predictions run to completion.
	draining atomic.Bool
	// pending counts admitted-but-unanswered prediction requests — the
	// admission-control and degradation-watermark signal.
	pending atomic.Int64
	// shed and degraded count resilience actions for tests and ops; served
	// counts completed 200s (the /metrics request counter).
	shed     atomic.Int64
	degraded atomic.Int64
	served   atomic.Int64
	// deadlineExpired counts requests dropped because their propagated
	// deadline passed while they queued (504); codelDropped counts requests
	// shed by the CoDel queue discipline (503).
	deadlineExpired atomic.Int64
	codelDropped    atomic.Int64
	// gw is the scatter-gather frontend when Options.Gateway is set; the
	// server then serves merges, not a local model.
	gw *shard.Gateway
}

// New builds a server for m. The model is wrapped per worker: compiled
// execution plans hold private buffers and must not be shared. With
// Options.Gateway set the model must be nil: the server fronts a sharded
// fleet and every prediction is a gateway scatter-gather merge.
func New(m model.Model, opts Options) (*Server, error) {
	return newServer(m, opts, 0)
}

func newServer(m model.Model, opts Options, version int) (*Server, error) {
	if opts.Gateway != nil {
		if m != nil {
			return nil, fmt.Errorf("server: Gateway mode fronts remote shard workers; pass a nil model")
		}
		if opts.Shards > 1 || opts.Partition != nil || opts.Batch != nil || opts.Sched != nil {
			return nil, fmt.Errorf("server: Gateway is mutually exclusive with Shards, Partition, Batch and Sched")
		}
		opts = opts.withDefaults()
		s := &Server{opts: opts, tracer: opts.Tracer, gw: opts.Gateway}
		s.rt.Store(&modelRuntime{lat: metrics.NewHistogram()})
		// The gateway traces the request (scatter/wait/merge stages); the
		// handler must not open a second span per request on the same tracer.
		s.gw.SetTracer(opts.Tracer)
		s.ready.Store(true)
		return s, nil
	}
	if m == nil {
		return nil, fmt.Errorf("server: nil model")
	}
	opts = opts.withDefaults()
	s := &Server{opts: opts, tracer: opts.Tracer}
	rt, err := buildRuntime(m, opts, version)
	if err != nil {
		return nil, err
	}
	s.rt.Store(rt)
	if opts.Batch != nil && opts.Sched != nil {
		return nil, fmt.Errorf("server: Batch and Sched are mutually exclusive — the scheduler does its own batching")
	}
	if opts.Batch != nil {
		cfg := *opts.Batch
		if cfg.CoDel == nil {
			cfg.CoDel = opts.CoDel
		}
		b, err := batching.New(cfg, s.runBatch)
		if err != nil {
			return nil, err
		}
		s.batcher = b
	}
	if opts.Sched != nil {
		d, err := sched.NewDispatcher(*opts.Sched, s.runSchedBatch)
		if err != nil {
			return nil, err
		}
		s.sched = d
	}
	s.ready.Store(true)
	return s, nil
}

// buildRuntime materialises the full serving state for one model: partition
// wrapping, the in-process shard tier, the per-worker predictor pool, and
// the degraded-mode fallback. New uses it once at startup; ApplyRelease
// uses it to construct the replacement runtime off the serving path before
// a single atomic swap installs it.
func buildRuntime(m model.Model, opts Options, version int) (*modelRuntime, error) {
	if opts.Shards > 1 && opts.Partition != nil {
		return nil, fmt.Errorf("server: Shards and Partition are mutually exclusive")
	}
	if opts.Partition != nil {
		enc, ok := m.(model.Encoder)
		if !ok {
			return nil, fmt.Errorf("server: model %s does not expose the encoder/MIPS decomposition needed for partition serving", m.Name())
		}
		pm, err := shard.PartitionModel(enc, *opts.Partition)
		if err != nil {
			return nil, err
		}
		m = pm
	}
	rt := &modelRuntime{
		mdl:     m,
		pool:    make(chan predictor, opts.Workers),
		version: version,
		lat:     metrics.NewHistogram(),
	}
	if opts.Shards > 1 {
		enc, ok := m.(model.Encoder)
		if !ok {
			return nil, fmt.Errorf("server: model %s does not expose the encoder/MIPS decomposition needed for sharded retrieval", m.Name())
		}
		pool, err := shard.NewPool(enc.ItemEmbeddings(), opts.Shards)
		if err != nil {
			return nil, err
		}
		rt.shardPool = pool
		rt.shardEnc = enc
	}
	for i := 0; i < opts.Workers; i++ {
		rt.pool <- rt.newPredictor(opts.JIT)
	}
	// Precompute the degraded-mode fallback once: a popularity-style static
	// recommendation list that costs a map lookup to serve, not a model
	// execution.
	if opts.DegradeAt > 0 {
		rt.fallback = m.Recommend([]int64{0})
	}
	return rt, nil
}

// Shed returns how many requests admission control refused (429).
func (s *Server) Shed() int64 { return s.shed.Load() }

// DeadlineExpired returns how many requests were dropped because their
// propagated deadline passed while they queued (504).
func (s *Server) DeadlineExpired() int64 { return s.deadlineExpired.Load() }

// CoDelDropped returns how many requests the CoDel queue discipline shed.
func (s *Server) CoDelDropped() int64 { return s.codelDropped.Load() }

// BeginDrain moves the server into the draining state: the readiness probe
// (/ping) starts answering 503 so balancers and service routers take the
// pod out of rotation, while the liveness probe (/live) keeps answering 200
// and prediction requests — including ones that race past the routing
// change — are still served. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of admitted-but-unanswered prediction
// requests — the quantity a graceful shutdown waits on.
func (s *Server) InFlight() int64 { return s.pending.Load() }

// DegradedCount returns how many responses the fallback responder served.
func (s *Server) DegradedCount() int64 { return s.degraded.Load() }

// Tracer returns the server's tracer (nil when tracing is disabled).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// NewStatic builds the "empty response, no computation" server used by the
// infrastructure validation experiment (paper Fig 2).
func NewStatic() *Server {
	s := &Server{opts: Options{}.withDefaults()}
	s.rt.Store(&modelRuntime{lat: metrics.NewHistogram()})
	s.ready.Store(true)
	return s
}

// LoadFromBucket deploys a model from a serialised manifest in a bucket —
// the paper's "deploy serialised PyTorch models from Google storage
// buckets".
func LoadFromBucket(b objstore.Bucket, key string, opts Options) (*Server, error) {
	data, err := b.Get(key)
	if err != nil {
		return nil, fmt.Errorf("server: fetching model artifact: %w", err)
	}
	manifest, err := model.UnmarshalManifest(data)
	if err != nil {
		return nil, err
	}
	m, err := manifest.Load()
	if err != nil {
		return nil, err
	}
	if manifest.WeightsKey != "" {
		weights, err := b.Get(manifest.WeightsKey)
		if err != nil {
			return nil, fmt.Errorf("server: fetching weights: %w", err)
		}
		if err := model.LoadWeights(m, weights); err != nil {
			return nil, fmt.Errorf("server: loading weights: %w", err)
		}
	}
	return New(m, opts)
}

// LoadFromReleases deploys from a versioned release store: version 0 loads
// the store's CURRENT pointer, a positive version pins a specific release
// (canary pods are deployed this way). When watch > 0 the server polls the
// store at that interval and hot-swaps onto newly promoted releases — the
// pod-side half of fleet-wide promotion.
func LoadFromReleases(store *deploy.Store, version int, watch time.Duration, opts Options) (*Server, error) {
	m, rel, err := store.LoadVersion(version)
	if err != nil {
		return nil, err
	}
	s, err := newServer(m, opts, rel.Version)
	if err != nil {
		return nil, err
	}
	s.releases = store
	if watch > 0 {
		s.watcher = deploy.Watch(store, watch,
			func() int { return s.rt.Load().version },
			func(rel deploy.Release) error { return s.ApplyRelease(rel.Version) })
	}
	return s, nil
}

// ApplyRelease loads release version (0 = CURRENT) from the server's
// release store, verifies every artifact checksum, builds a complete
// replacement runtime off the serving path, and installs it with one atomic
// swap: requests in flight finish on the runtime they started with, new
// requests see the new version — zero dropped requests. On any
// verification or deserialisation failure the incumbent keeps serving, the
// failure is counted, and the release is quarantined in the store
// (best-effort) so no watcher elsewhere retries the same poison.
func (s *Server) ApplyRelease(version int) error {
	if s.releases == nil {
		return fmt.Errorf("server: no release store configured")
	}
	// Serialise swaps; the serving path never takes this lock.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	m, rel, err := s.releases.LoadVersion(version)
	if err != nil {
		// A release whose record exists but whose content failed to verify
		// or decode is poison: quarantine it so the rest of the fleet stops
		// retrying it. Absent releases and already-quarantined ones are not
		// new failures.
		if rel.Version != 0 && !errors.Is(err, deploy.ErrQuarantined) {
			s.verifyFailures.Add(1)
			_ = s.releases.Quarantine(rel.Version, err.Error())
		}
		return err
	}
	if rel.Version == s.rt.Load().version {
		return nil
	}
	rt, err := buildRuntime(m, s.opts, rel.Version)
	if err != nil {
		s.verifyFailures.Add(1)
		_ = s.releases.Quarantine(rel.Version, err.Error())
		return err
	}
	s.rt.Store(rt)
	s.swaps.Add(1)
	return nil
}

func (rt *modelRuntime) newPredictor(jit bool) predictor {
	if rt.shardPool != nil {
		// Sharded retrieval: encode on the worker, scatter the representation
		// across the pool's shard goroutines, merge the exact global top-k.
		// The pool executes eagerly (compiled plans fuse encoder and scoring,
		// which a scatter cannot split), so JIT is ignored here.
		enc, pool, k := rt.shardEnc, rt.shardPool, rt.shardEnc.Config().TopK
		return func(session []int64, sp *trace.Span) []topk.Result {
			if sp == nil {
				return pool.TopK(enc.Encode(session), k)
			}
			t0 := sp.Now()
			rep := enc.Encode(session)
			sp.ObserveSince(trace.StageEncoderForward, t0)
			return pool.TopKSpan(rep, k, sp)
		}
	}
	if jit {
		if jc, ok := rt.mdl.(model.JITCompilable); ok {
			rt.jitActive = true
			compiled := jc.CompiledRecommend()
			return func(session []int64, sp *trace.Span) []topk.Result {
				if sp == nil {
					return compiled(session)
				}
				// Compiled plans fuse embedding lookup, encoder and scoring
				// into one closure; the fused time is attributed to
				// encoder-forward (run breakdowns with JIT off for the full
				// split).
				t0 := sp.Now()
				out := compiled(session)
				sp.ObserveSince(trace.StageEncoderForward, t0)
				return out
			}
		}
	}
	m := rt.mdl
	return func(session []int64, sp *trace.Span) []topk.Result {
		if sp == nil {
			return m.Recommend(session)
		}
		out, tm := model.RecommendStaged(m, session, sp.Now)
		sp.Observe(trace.StageEmbeddingLookup, tm.EmbeddingLookup)
		sp.Observe(trace.StageEncoderForward, tm.Encoder)
		sp.Observe(trace.StageMIPSTopK, tm.TopK)
		return out
	}
}

// Model returns the deployed model (nil in static mode).
func (s *Server) Model() model.Model { return s.rt.Load().mdl }

// JITActive reports whether the serving runtime uses compiled execution
// plans (false when the model refused compilation or JIT is off).
func (s *Server) JITActive() bool { return s.rt.Load().jitActive }

// ModelVersion returns the release version currently serving (0 when the
// model did not come from a release store).
func (s *Server) ModelVersion() int { return s.rt.Load().version }

// Swaps returns how many hot-swaps have completed.
func (s *Server) Swaps() int64 { return s.swaps.Load() }

// VerifyFailures returns how many releases were rejected at load time
// (checksum mismatch or undecodable artifacts) without ever serving.
func (s *Server) VerifyFailures() int64 { return s.verifyFailures.Load() }

// Gateway returns the scatter-gather frontend (nil unless Options.Gateway
// was set).
func (s *Server) Gateway() *shard.Gateway { return s.gw }

// runBatch executes a batch on a single worker slot, sequentially — the CPU
// analogue of one fused accelerator kernel sequence. Per item it attributes
// batch-assembly (enqueue→flush) and queue-wait (head-of-line inside the
// batch) before the model stages.
func (s *Server) runBatch(items []batchItem) []batchOut {
	// Load the runtime once per batch: a hot-swap mid-batch must not mix
	// predictors from two versions, and returning the slot to the pool it
	// came from keeps a retired runtime's pool intact while it drains.
	rt := s.rt.Load()
	p := <-rt.pool
	defer func() { rt.pool <- p }()
	s.tracer.ObserveBatchFlush(len(items))
	flushStart := s.tracer.Now()
	out := make([]batchOut, len(items))
	for i, it := range items {
		if it.sp != nil {
			it.sp.Observe(trace.StageBatchAssembly, flushStart-it.enq)
			it.sp.Observe(trace.StageQueueWait, it.sp.Now()-flushStart)
			it.sp.SetBatchSize(len(items))
		}
		out[i] = batchOut{recs: p(it.session, it.sp), size: len(items)}
	}
	return out
}

// runSchedBatch is runBatch's scheduled-path twin: batches arrive from the
// multi-tenant WDRR scheduler, so the enqueue→flush wait is attributed to
// the sched-wait stage (distinct from plain batch-assembly, letting tenant
// experiments pin tail movement on scheduling).
func (s *Server) runSchedBatch(items []batchItem) []batchOut {
	rt := s.rt.Load()
	p := <-rt.pool
	defer func() { rt.pool <- p }()
	s.tracer.ObserveBatchFlush(len(items))
	flushStart := s.tracer.Now()
	out := make([]batchOut, len(items))
	for i, it := range items {
		if it.sp != nil {
			it.sp.Observe(trace.StageSchedWait, flushStart-it.enq)
			it.sp.Observe(trace.StageQueueWait, it.sp.Now()-flushStart)
			it.sp.SetBatchSize(len(items))
		}
		out[i] = batchOut{recs: p(it.session, it.sp), size: len(items)}
	}
	return out
}

// TenantStats snapshots the scheduler's per-tenant counters (nil when
// Options.Sched is unset).
func (s *Server) TenantStats() []sched.TenantStats {
	if s.sched == nil {
		return nil
	}
	return s.sched.Stats()
}

// Close releases the release watcher, batcher and scheduler, if any.
func (s *Server) Close() {
	if s.watcher != nil {
		s.watcher.Close()
	}
	if s.batcher != nil {
		s.batcher.Close()
	}
	if s.sched != nil {
		s.sched.Close()
	}
}

// Handler returns the HTTP routes: POST /predictions, GET /ping
// (readiness), GET /live (liveness), GET /metrics (Prometheus text), and —
// when Options.Profiling is set — /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(httpapi.ReadyPath, s.handlePing)
	mux.HandleFunc(httpapi.LivePath, s.handleLive)
	mux.HandleFunc(httpapi.PredictPath, s.handlePredict)
	mux.HandleFunc(httpapi.MetricsPath, s.handleMetrics)
	mux.HandleFunc(httpapi.DeployPath, s.handleDeploy)
	if s.opts.Profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !s.ready.Load() {
		http.Error(w, "model loading", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write([]byte("pong")); err != nil {
		return
	}
}

// handleDeploy is the admin hot-swap endpoint: POST {"version": N} loads,
// verifies and atomically swaps onto release N (0 = the store's CURRENT
// pointer). A release failing checksum or deserialisation answers 422 and
// never serves a request; the incumbent version keeps serving throughout.
func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	if s.releases == nil {
		http.Error(w, "no release store configured", http.StatusNotFound)
		return
	}
	var req httpapi.DeployRequest
	if err := httpapi.ReadJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch err := s.ApplyRelease(req.Version); {
	case err == nil:
		httpapi.WriteJSON(w, http.StatusOK, httpapi.DeployResponse{Version: s.ModelVersion()})
	case errors.Is(err, deploy.ErrNotFound), errors.Is(err, deploy.ErrNoCurrent):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, deploy.ErrQuarantined):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		// Checksum mismatch, undecodable weights, wrong shape: the release
		// exists but must not serve.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	}
}

// handleLive is the liveness probe: 200 as long as the process serves HTTP,
// draining or not. Only a dead process fails it — which is exactly the
// signal a supervisor restarts on.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("alive"))
}

// handleMetrics renders the Prometheus text exposition: request/stage
// latency summaries (seconds), outcome counters, queue depth and drain
// state, plus whatever Options.MetricsExtra contributes.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b := metrics.NewPromBuilder()
	rt := s.rt.Load()
	bi := buildinfo.Get()
	b.Gauge("etude_build_info", "Build identity of the serving binary (value is always 1).", 1,
		metrics.Label{Name: "git_sha", Value: bi.ShortSHA()},
		metrics.Label{Name: "go_version", Value: bi.GoVersion})
	b.Counter("etude_requests_total", "Prediction requests answered 200.", float64(s.served.Load()))
	b.Counter("etude_shed_total", "Requests refused by admission control (429).", float64(s.shed.Load()))
	b.Counter("etude_degraded_total", "Responses served by the degraded fallback path.", float64(s.degraded.Load()))
	b.Counter("etude_deadline_expired_total", "Requests dropped because their deadline passed while queued (504).", float64(s.deadlineExpired.Load()))
	b.Counter("etude_codel_dropped_total", "Requests shed by the CoDel queue discipline.", float64(s.codelDropped.Load()))
	limit := 0.0
	if s.opts.Limiter != nil {
		limit = float64(s.opts.Limiter.Limit())
	}
	b.Gauge("etude_inflight_limit", "Adaptive in-flight limit (0 = static admission only).", limit)
	b.Gauge("etude_pending_requests", "Admitted but unanswered prediction requests.", float64(s.pending.Load()))
	b.Gauge("etude_queue_depth", "Server queue depth (batcher queue when batching).", float64(s.queueDepth()))
	drain := 0.0
	if s.draining.Load() {
		drain = 1
	}
	b.Gauge("etude_draining", "1 while the server is draining (readiness failing).", drain)
	b.Gauge("etude_model_version", "Release version currently serving (0 = unversioned deployment).", float64(rt.version))
	b.Counter("etude_model_swaps_total", "Hot-swaps onto a new release completed without dropping a request.", float64(s.swaps.Load()))
	b.Counter("etude_artifact_verify_failures_total", "Releases rejected at load time (checksum mismatch, undecodable artifacts) without serving.", float64(s.verifyFailures.Load()))
	if rt.version > 0 {
		// Version-scoped health: counters and latency charged to the serving
		// runtime only, reset by each swap. The canary controller compares
		// these families across the canary and baseline cohorts.
		vl := metrics.Label{Name: "version", Value: strconv.Itoa(rt.version)}
		b.Counter("etude_version_requests_total", "Requests answered 200 by the serving version (window since swap).", float64(rt.served.Load()), vl)
		b.Counter("etude_version_errors_total", "Error responses charged to the serving version (window since swap).", float64(rt.errs.Load()), vl)
		if snap := rt.lat.Snapshot(); snap.Count > 0 {
			b.Summary("etude_version_request_seconds", "Inference latency of the serving version (window since swap).", snap, vl)
		}
	}
	if s.sched != nil {
		for _, st := range s.sched.Stats() {
			lbl := metrics.Label{Name: "tenant", Value: st.Tenant}
			b.Counter("etude_tenant_served_total", "Requests served, by tenant (scheduler goodput).", float64(st.Served), lbl)
			b.Counter("etude_tenant_shed_total", "Requests refused at the tenant queue bound (429), by tenant.", float64(st.Shed), lbl)
			b.Counter("etude_tenant_deadline_miss_total", "Requests dropped at batch assembly after their deadline passed (504), by tenant.", float64(st.Expired), lbl)
			b.Gauge("etude_tenant_pending", "Queued requests, by tenant.", float64(st.Pending), lbl)
			b.Gauge("etude_tenant_weight", "Configured WDRR weight, by tenant.", float64(st.Weight), lbl)
		}
	}
	if rt.shardPool != nil {
		b.Gauge("etude_shards", "In-process retrieval shard count.", float64(rt.shardPool.Shards()))
	}
	if s.gw != nil {
		b.Gauge("etude_shards", "Shard groups behind the scatter-gather gateway.", float64(s.gw.Shards()))
		s.gw.WriteMetrics(b)
	}
	if tr := s.tracer; tr != nil {
		if total := tr.TotalSnapshot(); total.Count > 0 {
			b.Summary("etude_request_seconds", "End-to-end request latency.", total)
		}
		for _, st := range trace.Stages() {
			if snap := tr.StageSnapshot(st); snap.Count > 0 {
				b.Summary("etude_stage_seconds", "Per-stage request latency.", snap,
					metrics.Label{Name: "stage", Value: st.String()})
			}
		}
		flushes, meanSize, maxSize := tr.BatchStats()
		if flushes > 0 {
			b.Counter("etude_batch_flushes_total", "Batch dispatches.", float64(flushes))
			b.Gauge("etude_batch_size_mean", "Mean batch size at flush.", meanSize)
			b.Gauge("etude_batch_size_max", "Largest batch dispatched.", float64(maxSize))
		}
	}
	if s.opts.MetricsExtra != nil {
		s.opts.MetricsExtra(b)
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	_, _ = io.WriteString(w, b.String())
}

// queueDepth returns the server's pending-work signal: the batcher queue
// when batching, the admitted-request count otherwise.
func (s *Server) queueDepth() int {
	if s.batcher != nil {
		return s.batcher.Pending()
	}
	if s.sched != nil {
		return s.sched.Pending()
	}
	return int(s.pending.Load())
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Echo the request id on every path — success, shed, malformed,
	// cancelled — so any response in a chaos run is attributable to the
	// client-side trace that produced it.
	reqID := r.Header.Get(httpapi.HeaderRequestID)
	if reqID != "" {
		w.Header().Set(httpapi.HeaderRequestID, reqID)
	}
	// The tenant label is echoed the same way, on every response path —
	// success, shed, degraded, partial — so per-tenant accounting on the
	// client side never loses a response.
	tenant := r.Header.Get(httpapi.HeaderTenant)
	if tenant != "" {
		w.Header().Set(httpapi.HeaderTenant, tenant)
	}
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	// Deadline propagation: the client's absolute X-Deadline joins the
	// request context so every stage below — admission, batcher flush,
	// worker dispatch — can check the remaining budget. Work whose caller
	// has already given up is dropped with 504 instead of computed.
	if dl, ok := httpapi.DeadlineHeader(r.Header); ok {
		ctx, cancel := context.WithDeadline(r.Context(), dl)
		defer cancel()
		r = r.WithContext(ctx)
		if ctx.Err() == context.DeadlineExceeded {
			s.deadlineExpired.Add(1)
			http.Error(w, "deadline exceeded in queue", http.StatusGatewayTimeout)
			return
		}
	}
	// Admission control: past the pending bound the server sheds with 429 +
	// Retry-After instead of queueing without limit — a saturated server
	// answering "not now" fast beats one answering everything late.
	if s.opts.MaxPending > 0 && s.pending.Load() >= int64(s.opts.MaxPending) {
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
		return
	}
	// Adaptive admission: the AIMD limiter bounds in-flight work at the
	// learned capacity; the static bound above is only its backstop.
	// `congested` marks outcomes that feed the limiter a drop signal
	// instead of an honest latency.
	congested := false
	if lim := s.opts.Limiter; lim != nil {
		if !lim.TryAcquire() {
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded (adaptive limit), retry later", http.StatusTooManyRequests)
			return
		}
		limStart := time.Now()
		defer func() { lim.Release(time.Since(limStart), congested) }()
	}
	s.pending.Add(1)
	defer s.pending.Add(-1)

	// Pin the serving runtime for the whole request: a hot-swap landing
	// mid-request must not mix versions, and the version header lets clients
	// (and the canary controller's blast-radius accounting) attribute every
	// response — success or error — to the release that produced it.
	rt := s.rt.Load()
	if rt.version > 0 {
		w.Header().Set(httpapi.HeaderModelVersion, strconv.Itoa(rt.version))
	}

	// Gateway mode: the gateway opens the request's span itself (scatter,
	// wait, merge, error outcomes); a handler span on the same tracer would
	// double-count every request.
	var sp *trace.Span
	if s.gw == nil {
		sp = s.tracer.Start(reqID)
	}
	admStart := sp.Now()

	var req httpapi.PredictRequest
	if err := httpapi.ReadJSON(r.Body, &req); err != nil {
		sp.Discard()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if reqID == "" && req.RequestID != "" {
		// Body-carried id (header-stripping transports): still echoed.
		reqID = req.RequestID
		w.Header().Set(httpapi.HeaderRequestID, reqID)
	}
	if tenant == "" && req.Tenant != "" {
		// Body-carried tenant label: same header-stripping fallback.
		tenant = req.Tenant
		w.Header().Set(httpapi.HeaderTenant, tenant)
	}
	if err := req.Validate(); err != nil {
		sp.Discard()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sp.ObserveSince(trace.StageAdmission, admStart)

	start := time.Now()
	var recs []topk.Result
	batch := 1
	degraded := false
	switch {
	case s.gw != nil:
		pr, err := s.gw.PredictPartial(r.Context(), req)
		if err != nil {
			var ce *shard.CoverageError
			var se *httpapi.StatusError
			status := http.StatusBadGateway
			switch {
			case errors.As(err, &ce):
				// Below the coverage floor: the fleet cannot honour even the
				// relaxed contract — shed like an unavailable backend.
				status = http.StatusServiceUnavailable
			case errors.As(err, &se):
				status = se.Code
			case errors.Is(err, context.DeadlineExceeded):
				status = http.StatusGatewayTimeout
				s.deadlineExpired.Add(1)
			}
			http.Error(w, err.Error(), status)
			return
		}
		recs = pr.Recs
		httpapi.SetCoverageHeader(w.Header(), pr.Coverage())
		if pr.Partial() {
			w.Header().Set(httpapi.HeaderDegraded, httpapi.DegradedPartial)
			s.degraded.Add(1)
		}
	case rt.mdl == nil:
		// Static mode: no inference at all.
	case s.opts.DegradeAt > 0 && s.queueDepth() > s.opts.DegradeAt:
		// Graceful degradation: past the watermark, answer from the
		// precomputed fallback list instead of joining the model queue.
		recs = rt.fallback
		degraded = true
		s.degraded.Add(1)
	case s.sched != nil:
		out, err := s.sched.Submit(r.Context(), tenant, batchItem{session: req.Items, sp: sp, enq: sp.Now()})
		if err != nil {
			// As on the batcher path: the dispatcher may still hold the span.
			sp = nil
			rt.errs.Add(1)
			status := http.StatusServiceUnavailable
			switch {
			case errors.Is(err, sched.ErrShed):
				// Tenant queue at its bound: the scheduler's per-tenant
				// admission control, answered like the global one.
				status = http.StatusTooManyRequests
				s.shed.Add(1)
				w.Header().Set("Retry-After", "1")
			case errors.Is(err, context.DeadlineExceeded):
				// Covers both sched.ErrExpired (dropped at assembly) and the
				// request context's own deadline firing first.
				status = http.StatusGatewayTimeout
				s.deadlineExpired.Add(1)
				congested = true
			case errors.Is(err, context.Canceled):
				status = http.StatusGatewayTimeout
				congested = true
			}
			http.Error(w, err.Error(), status)
			return
		}
		recs = out.recs
		batch = out.size
	case s.batcher != nil:
		out, err := s.batcher.Submit(r.Context(), batchItem{session: req.Items, sp: sp, enq: sp.Now()})
		if err != nil {
			// The dispatcher may still hold the span (cancelled mid-flight):
			// abandon it rather than recycle it under a racing writer.
			sp = nil
			rt.errs.Add(1)
			status := http.StatusServiceUnavailable
			switch err {
			case context.DeadlineExceeded:
				status = http.StatusGatewayTimeout
				s.deadlineExpired.Add(1)
				congested = true
			case context.Canceled:
				status = http.StatusGatewayTimeout
				congested = true
			case batching.ErrCoDelDropped:
				s.codelDropped.Add(1)
				congested = true
				w.Header().Set("Retry-After", "1")
			}
			http.Error(w, err.Error(), status)
			return
		}
		recs = out.recs
		batch = out.size
	default:
		// A disconnected client must not consume a worker slot: select on
		// the request context while waiting for one, and bail out
		// 499-style (nginx's "client closed request") if the client hung
		// up first.
		poolWait := sp.Now()
		waitStart := time.Now()
		select {
		case p := <-rt.pool:
			sp.ObserveSince(trace.StageQueueWait, poolWait)
			// Expired work must not reach the encoder: the budget check
			// happens after the queue wait, right before dispatch.
			if r.Context().Err() == context.DeadlineExceeded {
				rt.pool <- p
				s.deadlineExpired.Add(1)
				rt.errs.Add(1)
				congested = true
				sp.Discard()
				http.Error(w, "deadline exceeded in queue", http.StatusGatewayTimeout)
				return
			}
			// CoDel on the worker-pool wait: a sustained standing queue in
			// front of the workers sheds from the head here.
			if s.opts.CoDel.ShouldDrop(time.Since(waitStart)) {
				rt.pool <- p
				s.codelDropped.Add(1)
				rt.errs.Add(1)
				congested = true
				sp.Discard()
				w.Header().Set("Retry-After", "1")
				http.Error(w, "shed by queue discipline, retry later", http.StatusServiceUnavailable)
				return
			}
			recs = p(req.Items, sp)
			rt.pool <- p
		case <-r.Context().Done():
			sp.Discard()
			if r.Context().Err() == context.DeadlineExceeded {
				s.deadlineExpired.Add(1)
				rt.errs.Add(1)
				congested = true
				http.Error(w, "deadline exceeded in queue", http.StatusGatewayTimeout)
				return
			}
			w.WriteHeader(httpapi.StatusClientClosedRequest)
			return
		}
	}
	inference := time.Since(start)

	serStart := sp.Now()
	resp := httpapi.PredictResponse{
		Items:  make([]int64, len(recs)),
		Scores: make([]float32, len(recs)),
	}
	for i, rec := range recs {
		resp.Items[i] = rec.Item
		resp.Scores[i] = rec.Score
	}
	httpapi.SetDurationHeaders(w.Header(), inference, batch)
	if degraded {
		w.Header().Set(httpapi.HeaderDegraded, "1")
	}
	httpapi.WriteJSON(w, http.StatusOK, resp)
	s.served.Add(1)
	rt.served.Add(1)
	rt.lat.Record(inference)
	sp.ObserveSince(trace.StageSerialize, serStart)
	sp.Finish()
}
