package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"etude/internal/batching"
	"etude/internal/httpapi"
	"etude/internal/leakcheck"
	"etude/internal/model"
	"etude/internal/objstore"
)

func testModel(t *testing.T) model.Model {
	t.Helper()
	m, err := model.New("gru4rec", model.Config{CatalogSize: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func predict(t *testing.T, ts *httptest.Server, req httpapi.PredictRequest) (*http.Response, httpapi.PredictResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out httpapi.PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestPredictEndToEnd(t *testing.T) {
	m := testModel(t)
	s, err := New(m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := predict(t, ts, httpapi.PredictRequest{SessionID: 1, Items: []int64{3, 17, 42}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Items) != model.DefaultTopK || len(out.Scores) != model.DefaultTopK {
		t.Fatalf("got %d items, %d scores", len(out.Items), len(out.Scores))
	}
	// Server responses must match direct model output.
	direct := m.Recommend([]int64{3, 17, 42})
	for i := range direct {
		if out.Items[i] != direct[i].Item {
			t.Fatalf("served item %d != direct %d at %d", out.Items[i], direct[i].Item, i)
		}
	}
	if httpapi.InferenceDuration(resp.Header) <= 0 {
		t.Fatalf("missing inference duration header")
	}
}

func TestReadinessProbe(t *testing.T) {
	s, _ := New(testModel(t), Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + httpapi.ReadyPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping status = %d", resp.StatusCode)
	}
}

func TestStaticServer(t *testing.T) {
	s := NewStatic()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, out := predict(t, ts, httpapi.PredictRequest{SessionID: 1, Items: []int64{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Items) != 0 {
		t.Fatalf("static server must return an empty answer, got %v", out.Items)
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := New(testModel(t), Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Wrong method.
	resp, err := http.Get(ts.URL + httpapi.PredictPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp2, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp2.StatusCode)
	}
	// Negative item id.
	resp3, _ := predict(t, ts, httpapi.PredictRequest{Items: []int64{-1}})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative item status = %d", resp3.StatusCode)
	}
}

func TestJITServingMatchesEager(t *testing.T) {
	m := testModel(t)
	eager, _ := New(m, Options{Workers: 1})
	defer eager.Close()
	jit, err := New(m, Options{Workers: 1, JIT: true})
	if err != nil {
		t.Fatal(err)
	}
	defer jit.Close()
	if !jit.JITActive() {
		t.Fatalf("JIT not active for a compilable model")
	}
	tsE := httptest.NewServer(eager.Handler())
	defer tsE.Close()
	tsJ := httptest.NewServer(jit.Handler())
	defer tsJ.Close()

	req := httpapi.PredictRequest{Items: []int64{5, 9, 14}}
	_, outE := predict(t, tsE, req)
	_, outJ := predict(t, tsJ, req)
	for i := range outE.Items {
		if outE.Items[i] != outJ.Items[i] {
			t.Fatalf("JIT item %d != eager %d at %d", outJ.Items[i], outE.Items[i], i)
		}
	}
}

func TestLightSANsFallsBackToEager(t *testing.T) {
	m, err := model.New("lightsans", model.Config{CatalogSize: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Options{JIT: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.JITActive() {
		t.Fatalf("LightSANs must not be JIT-served (paper: dynamic code paths)")
	}
}

func TestConcurrentPredictions(t *testing.T) {
	s, _ := New(testModel(t), Options{Workers: 4, JIT: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, out := predict(t, ts, httpapi.PredictRequest{Items: []int64{int64(n % 200)}})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
				return
			}
			if len(out.Items) == 0 {
				t.Errorf("empty response")
			}
		}(i)
	}
	wg.Wait()
}

func TestBatchedServing(t *testing.T) {
	cfg := batching.Config{MaxBatch: 16, FlushEvery: 2 * time.Millisecond}
	s, err := New(testModel(t), Options{Workers: 2, Batch: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, out := predict(t, ts, httpapi.PredictRequest{Items: []int64{int64(n % 200), 5}})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
				return
			}
			if len(out.Items) != model.DefaultTopK {
				t.Errorf("got %d items", len(out.Items))
			}
		}(i)
	}
	wg.Wait()
}

func TestLoadFromBucket(t *testing.T) {
	bucket := objstore.NewMemBucket()
	manifest := model.Manifest{
		Model:  "stamp",
		Config: model.Config{CatalogSize: 150, Seed: 3},
	}
	data, err := model.MarshalManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := bucket.Put("models/stamp.json", data); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFromBucket(bucket, "models/stamp.json", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Model().Name() != "stamp" {
		t.Fatalf("loaded model = %s", s.Model().Name())
	}
	if _, err := LoadFromBucket(bucket, "models/missing.json", Options{}); err == nil {
		t.Fatalf("missing artifact must error")
	}
	_ = bucket.Put("models/garbage.json", []byte("not json"))
	if _, err := LoadFromBucket(bucket, "models/garbage.json", Options{}); err == nil {
		t.Fatalf("garbage artifact must error")
	}
}

func TestNilModelRejected(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatalf("nil model accepted")
	}
}

// TestServingOverheadLow is the repository's local version of the paper's
// Fig 2 claim for the Actix server: static responses are served in around a
// millisecond. We allow generous slack for CI noise but require
// sub-10ms responses.
func TestServingOverheadLow(t *testing.T) {
	s := NewStatic()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1}})
	// Warm up connections.
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	start := time.Now()
	const n = 100
	for i := 0; i < n; i++ {
		resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	avg := time.Since(start) / n
	if avg > 10*time.Millisecond {
		t.Fatalf("static serving overhead %v per request — want ≈1ms", avg)
	}
}

func ExampleServer() {
	m, _ := model.New("core", model.Config{CatalogSize: 100, Seed: 1, TopK: 3})
	s, _ := New(m, Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(httpapi.PredictRequest{SessionID: 7, Items: []int64{1, 2, 3}})
	resp, err := http.Post(ts.URL+httpapi.PredictPath, "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var out httpapi.PredictResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	fmt.Println(len(out.Items), "recommendations")
	// Output: 3 recommendations
}

// TestBatchedMatchesUnbatched: request batching must not change results.
func TestBatchedMatchesUnbatched(t *testing.T) {
	m := testModel(t)
	plain, err := New(m, Options{Workers: 1, JIT: true})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cfg := batching.Config{MaxBatch: 8, FlushEvery: time.Millisecond}
	batched, err := New(m, Options{Workers: 1, JIT: true, Batch: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	tsP := httptest.NewServer(plain.Handler())
	defer tsP.Close()
	tsB := httptest.NewServer(batched.Handler())
	defer tsB.Close()

	for _, session := range [][]int64{{1}, {5, 9}, {100, 3, 100}} {
		req := httpapi.PredictRequest{Items: session}
		_, a := predict(t, tsP, req)
		_, b := predict(t, tsB, req)
		for i := range a.Items {
			if a.Items[i] != b.Items[i] {
				t.Fatalf("session %v pos %d: plain %d != batched %d", session, i, a.Items[i], b.Items[i])
			}
		}
	}
}

// TestWorkerPoolBoundsConcurrency: with one worker, two simultaneous
// requests serialise — the second's total time includes the first's
// service.
func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 150_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm up caches and connections, then time one request alone.
	for i := 0; i < 3; i++ {
		predict(t, ts, httpapi.PredictRequest{Items: []int64{1, 2}})
	}
	start := time.Now()
	predict(t, ts, httpapi.PredictRequest{Items: []int64{1, 2}})
	solo := time.Since(start)

	// Fire four at once; the last must take ≈4× solo.
	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			predict(t, ts, httpapi.PredictRequest{Items: []int64{1, 2}})
		}()
	}
	wg.Wait()
	batchTime := time.Since(start)
	if batchTime < 2*solo {
		t.Fatalf("4 concurrent on 1 worker took %v vs solo %v — pool not bounding", batchTime, solo)
	}
}

// TestLoadFromBucketWithWeights: the full serialised-model deployment flow —
// manifest + weight archive in the bucket; the deployed server must behave
// like the weight donor even though the manifest's seed differs.
func TestLoadFromBucketWithWeights(t *testing.T) {
	donor, err := model.New("gru4rec", model.Config{CatalogSize: 300, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	weights, err := model.SaveWeights(donor)
	if err != nil {
		t.Fatal(err)
	}
	bucket := objstore.NewMemBucket()
	if err := bucket.Put("weights/gru4rec.bin", weights); err != nil {
		t.Fatal(err)
	}
	manifest := model.Manifest{
		Model:      "gru4rec",
		Config:     model.Config{CatalogSize: 300, Seed: 7}, // different seed!
		WeightsKey: "weights/gru4rec.bin",
	}
	data, _ := model.MarshalManifest(manifest)
	if err := bucket.Put("models/gru4rec.json", data); err != nil {
		t.Fatal(err)
	}

	s, err := LoadFromBucket(bucket, "models/gru4rec.json", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, out := predict(t, ts, httpapi.PredictRequest{Items: []int64{5, 9}})
	want := donor.Recommend([]int64{5, 9})
	for i := range want {
		if out.Items[i] != want[i].Item {
			t.Fatalf("pos %d: served %d != donor %d — weights not applied", i, out.Items[i], want[i].Item)
		}
	}

	// Missing weights archive must fail deployment.
	bad := model.Manifest{Model: "gru4rec", Config: model.Config{CatalogSize: 300}, WeightsKey: "weights/missing.bin"}
	badData, _ := model.MarshalManifest(bad)
	_ = bucket.Put("models/bad.json", badData)
	if _, err := LoadFromBucket(bucket, "models/bad.json", Options{}); err == nil {
		t.Fatalf("missing weights archive accepted")
	}
	// Corrupt weights archive must fail deployment.
	_ = bucket.Put("weights/corrupt.bin", []byte("junk"))
	corrupt := model.Manifest{Model: "gru4rec", Config: model.Config{CatalogSize: 300}, WeightsKey: "weights/corrupt.bin"}
	corruptData, _ := model.MarshalManifest(corrupt)
	_ = bucket.Put("models/corrupt.json", corruptData)
	if _, err := LoadFromBucket(bucket, "models/corrupt.json", Options{}); err == nil {
		t.Fatalf("corrupt weights archive accepted")
	}
}

// TestDrainLifecycle pins the liveness/readiness split a graceful drain
// relies on: BeginDrain fails the readiness probe (routers stop sending
// work) while liveness stays green (supervisors must not restart) and
// predictions — admitted or racing — still complete.
func TestDrainLifecycle(t *testing.T) {
	leakcheck.Check(t)
	m := testModel(t)
	s, err := New(m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Before drain: both probes green.
	if got := get(httpapi.ReadyPath); got != http.StatusOK {
		t.Fatalf("ready before drain = %d", got)
	}
	if got := get(httpapi.LivePath); got != http.StatusOK {
		t.Fatalf("live before drain = %d", got)
	}
	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}

	s.BeginDrain()
	s.BeginDrain() // idempotent
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	if got := get(httpapi.ReadyPath); got != http.StatusServiceUnavailable {
		t.Fatalf("ready during drain = %d, want 503", got)
	}
	if got := get(httpapi.LivePath); got != http.StatusOK {
		t.Fatalf("live during drain = %d, want 200", got)
	}
	// Predictions still complete during drain.
	resp, out := predict(t, ts, httpapi.PredictRequest{Items: []int64{3, 7}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict during drain = %d", resp.StatusCode)
	}
	if len(out.Items) == 0 {
		t.Fatal("empty prediction during drain")
	}
}

func TestInFlightGauge(t *testing.T) {
	m := testModel(t)
	s, err := New(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.InFlight() != 0 {
		t.Fatalf("idle InFlight = %d", s.InFlight())
	}
}
