package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"testing"
	"time"

	"etude/internal/batching"
	"etude/internal/buildinfo"
	"etude/internal/httpapi"
	"etude/internal/metrics"
	"etude/internal/model"
	"etude/internal/overload"
	"etude/internal/trace"
)

func predictWithID(t *testing.T, ts *httptest.Server, id string, req httpapi.PredictRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+httpapi.PredictPath, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if id != "" {
		hreq.Header.Set(httpapi.HeaderRequestID, id)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestRequestIDEchoedOnSuccess(t *testing.T) {
	s, _ := New(testModel(t), Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictWithID(t, ts, "req-42", httpapi.PredictRequest{Items: []int64{1, 2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderRequestID); got != "req-42" {
		t.Fatalf("request id echo = %q, want req-42", got)
	}
}

func TestRequestIDEchoedFromBody(t *testing.T) {
	s, _ := New(testModel(t), Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictWithID(t, ts, "", httpapi.PredictRequest{RequestID: "body-7", Items: []int64{1}})
	if got := resp.Header.Get(httpapi.HeaderRequestID); got != "body-7" {
		t.Fatalf("body-carried request id echo = %q, want body-7", got)
	}
}

func TestRequestIDEchoedOnBadRequest(t *testing.T) {
	s, _ := New(testModel(t), Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictWithID(t, ts, "bad-1", httpapi.PredictRequest{Items: []int64{-5}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderRequestID); got != "bad-1" {
		t.Fatalf("400 must echo request id, got %q", got)
	}
}

func TestRequestIDEchoedOnShed(t *testing.T) {
	s, _ := New(testModel(t), Options{MaxPending: 1})
	defer s.Close()
	// Saturate admission control directly: the handler sheds before ever
	// decoding the body.
	s.pending.Add(2)
	defer s.pending.Add(-2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := predictWithID(t, ts, "shed-9", httpapi.PredictRequest{Items: []int64{1}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(httpapi.HeaderRequestID); got != "shed-9" {
		t.Fatalf("429 must echo request id, got %q", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
}

func TestRequestIDEchoedOnClientCancel(t *testing.T) {
	s, _ := New(testModel(t), Options{Workers: 1})
	defer s.Close()
	// Hold the only worker so the handler parks in the pool select, then
	// arrive with an already-cancelled context: the 499 path.
	p := <-s.rt.Load().pool
	defer func() { s.rt.Load().pool <- p }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1}})
	req := httptest.NewRequest(http.MethodPost, httpapi.PredictPath, bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set(httpapi.HeaderRequestID, "gone-3")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != httpapi.StatusClientClosedRequest {
		t.Fatalf("status = %d, want 499", rec.Code)
	}
	if got := rec.Header().Get(httpapi.HeaderRequestID); got != "gone-3" {
		t.Fatalf("499 must echo request id, got %q", got)
	}
}

func TestRequestIDEchoedOnDegraded(t *testing.T) {
	s, _ := New(testModel(t), Options{DegradeAt: 1})
	defer s.Close()
	// Push queue depth past the watermark so the fallback path answers.
	s.pending.Add(5)
	defer s.pending.Add(-5)
	body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1}})
	req := httptest.NewRequest(http.MethodPost, httpapi.PredictPath, bytes.NewReader(body))
	req.Header.Set(httpapi.HeaderRequestID, "deg-5")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get(httpapi.HeaderDegraded) != "1" {
		t.Fatalf("expected degraded 200, got %d degraded=%q", rec.Code, rec.Header().Get(httpapi.HeaderDegraded))
	}
	if got := rec.Header().Get(httpapi.HeaderRequestID); got != "deg-5" {
		t.Fatalf("degraded response must echo request id, got %q", got)
	}
}

func TestMetricsEndpointParsesBack(t *testing.T) {
	tr := trace.New(trace.Options{})
	s, _ := New(testModel(t), Options{Tracer: tr})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		resp := predictWithID(t, ts, "", httpapi.PredictRequest{Items: []int64{1, 2, 3}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + httpapi.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PromContentType {
		t.Fatalf("content type = %q", ct)
	}
	samples, err := metrics.ParsePromText(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse back: %v", err)
	}
	byKey := map[string]float64{}
	for _, smp := range samples {
		byKey[smp.Key()] = smp.Value
	}
	if byKey["etude_requests_total"] != 5 {
		t.Fatalf("etude_requests_total = %v, want 5", byKey["etude_requests_total"])
	}
	if byKey["etude_request_seconds_count"] != 5 {
		t.Fatalf("request summary count = %v, want 5", byKey["etude_request_seconds_count"])
	}
	// The unbatched traced path must expose the encoder/top-k split.
	for _, stage := range []string{"admission", "queue-wait", "embedding-lookup", "encoder-forward", "mips-topk", "serialize"} {
		key := `etude_stage_seconds_count{stage="` + stage + `"}`
		if byKey[key] != 5 {
			t.Fatalf("stage %s count = %v, want 5 (keys: %v)", stage, byKey[key], keysOf(byKey))
		}
	}
	if _, ok := byKey["etude_queue_depth"]; !ok {
		t.Fatal("missing etude_queue_depth gauge")
	}
	// Overload-control families are always exposed, zero-valued when idle.
	for _, fam := range []string{"etude_deadline_expired_total", "etude_codel_dropped_total", "etude_inflight_limit"} {
		if v, ok := byKey[fam]; !ok || v != 0 {
			t.Fatalf("%s = %v (present %v), want 0 on an idle unlimited server", fam, v, ok)
		}
	}
	// Build identity gauge parses back with the live binary's labels.
	var found bool
	for _, smp := range samples {
		if smp.Name != "etude_build_info" {
			continue
		}
		found = true
		if smp.Value != 1 {
			t.Fatalf("etude_build_info = %v, want 1", smp.Value)
		}
		bi := buildinfo.Get()
		if smp.Labels["git_sha"] != bi.ShortSHA() || smp.Labels["go_version"] != bi.GoVersion {
			t.Fatalf("build info labels %v do not match identity %+v", smp.Labels, bi)
		}
	}
	if !found {
		t.Fatal("missing etude_build_info gauge")
	}
}

func TestMetricsExposeOverloadCounters(t *testing.T) {
	lim := overload.NewLimiter(overload.LimiterConfig{Initial: 8})
	s, _ := New(testModel(t), Options{Limiter: lim})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One expired request and one served request.
	body, _ := json.Marshal(httpapi.PredictRequest{Items: []int64{1}})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+httpapi.PredictPath, bytes.NewReader(body))
	httpapi.SetDeadlineHeader(hreq.Header, time.Now().Add(-time.Second))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request status = %d, want 504", resp.StatusCode)
	}
	if resp2 := predictWithID(t, ts, "", httpapi.PredictRequest{Items: []int64{1}}); resp2.StatusCode != http.StatusOK {
		t.Fatalf("live request status = %d", resp2.StatusCode)
	}

	mresp, err := http.Get(ts.URL + httpapi.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	samples, err := metrics.ParsePromText(mresp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse back: %v", err)
	}
	byKey := map[string]float64{}
	for _, smp := range samples {
		byKey[smp.Key()] = smp.Value
	}
	if byKey["etude_deadline_expired_total"] != 1 {
		t.Fatalf("etude_deadline_expired_total = %v, want 1", byKey["etude_deadline_expired_total"])
	}
	if byKey["etude_inflight_limit"] != float64(lim.Limit()) || byKey["etude_inflight_limit"] == 0 {
		t.Fatalf("etude_inflight_limit = %v, want current limit %d", byKey["etude_inflight_limit"], lim.Limit())
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestMetricsExtraHook(t *testing.T) {
	s, _ := New(testModel(t), Options{
		MetricsExtra: func(b *metrics.PromBuilder) {
			b.Gauge("etude_breaker_open_endpoints", "Breaker-ejected endpoints.", 2)
		},
	})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, httpapi.MetricsPath, nil))
	if !strings.Contains(rec.Body.String(), "etude_breaker_open_endpoints 2") {
		t.Fatalf("MetricsExtra family missing:\n%s", rec.Body.String())
	}
	if _, err := metrics.ParsePromText(strings.NewReader(rec.Body.String())); err != nil {
		t.Fatalf("exposition with extra families did not parse: %v", err)
	}
}

func TestPprofOptIn(t *testing.T) {
	on, _ := New(testModel(t), Options{Profiling: true})
	defer on.Close()
	ts := httptest.NewServer(on.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof profile status = %d, want 200", resp.StatusCode)
	}

	off, _ := New(testModel(t), Options{})
	defer off.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp2, err := http.Get(tsOff.URL + "/debug/pprof/profile")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("pprof must not be mounted unless Profiling is set")
	}
}

func TestBatchedTracingRecordsBatchStages(t *testing.T) {
	tr := trace.New(trace.Options{})
	cfg := batching.Config{MaxBatch: 8, FlushEvery: time.Millisecond}
	s, _ := New(testModel(t), Options{Workers: 1, Batch: &cfg, Tracer: tr})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 12
	for i := 0; i < n; i++ {
		resp := predictWithID(t, ts, "", httpapi.PredictRequest{Items: []int64{1, 2, 3}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	if got := tr.TotalSnapshot().Count; got != n {
		t.Fatalf("total spans = %d, want %d", got, n)
	}
	if got := tr.StageSnapshot(trace.StageBatchAssembly).Count; got != n {
		t.Fatalf("batch-assembly count = %d, want %d", got, n)
	}
	flushes, mean, _ := tr.BatchStats()
	if flushes == 0 || mean < 1 {
		t.Fatalf("batch stats not recorded: flushes=%d mean=%v", flushes, mean)
	}
	if len(tr.Exemplars()) == 0 {
		t.Fatal("no tail exemplars retained")
	}
}

// Stage sums must reconcile with end-to-end totals: on the traced unbatched
// path every stage is measured, so the mean stage-sum should land within
// 25% of the mean total (generous: httptest adds network+header time the
// stages legitimately exclude).
func TestStageSumReconcilesWithTotal(t *testing.T) {
	tr := trace.New(trace.Options{})
	s, _ := New(testModel(t), Options{Workers: 1, Tracer: tr})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 30
	for i := 0; i < n; i++ {
		resp := predictWithID(t, ts, "", httpapi.PredictRequest{Items: []int64{5, 9, 13, 2}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	var stageSum time.Duration
	for _, st := range trace.Stages() {
		snap := tr.StageSnapshot(st)
		stageSum += time.Duration(float64(snap.Mean) * float64(snap.Count) / n)
	}
	total := tr.TotalSnapshot().Mean
	if stageSum == 0 || total == 0 {
		t.Fatalf("no data: stageSum=%v total=%v", stageSum, total)
	}
	ratio := float64(stageSum) / float64(total)
	if ratio < 0.5 || ratio > 1.05 {
		t.Fatalf("stage-sum %v does not reconcile with total %v (ratio %.2f)", stageSum, total, ratio)
	}
}

// The <2% guard: with tracing disabled the instrumented predictor path (one
// nil-span check per stage) must not measurably slow the inference hot path.
// Minimum-of-rounds on both sides cancels scheduler noise.
func TestTracingDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard; skipped in -short")
	}
	m, err := model.New("gru4rec", model.Config{CatalogSize: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(m, Options{Workers: 1})
	defer s.Close()
	p := <-s.rt.Load().pool
	defer func() { s.rt.Load().pool <- p }()
	session := []int64{3, 17, 42, 8, 99, 7}

	for i := 0; i < 20; i++ { // warm caches on both paths
		m.Recommend(session)
		p(session, nil)
	}
	// A/B wall-clock comparisons at ~300µs per call are dominated by
	// scheduler and frequency noise, so use a robust paired design: GC off,
	// interleaved rounds, and the median of per-round instrumented/base
	// ratios (immune to drift and spike outliers on either side).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	run := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < 10; i++ {
			f()
		}
		return time.Since(start)
	}
	const rounds = 60
	ratios := make([]float64, 0, rounds)
	for round := 0; round < rounds; round++ {
		// Alternate measurement order: frequency ramps within a round would
		// otherwise systematically penalise whichever side runs second.
		var base, instrumented time.Duration
		if round%2 == 0 {
			base = run(func() { m.Recommend(session) })
			instrumented = run(func() { p(session, nil) })
		} else {
			instrumented = run(func() { p(session, nil) })
			base = run(func() { m.Recommend(session) })
		}
		ratios = append(ratios, float64(instrumented)/float64(base))
	}
	sort.Float64s(ratios)
	median := ratios[rounds/2]
	overhead := median - 1
	if overhead > 0.02 {
		t.Fatalf("tracing-disabled overhead %.2f%% exceeds 2%% (median of %d paired rounds)",
			overhead*100, rounds)
	}
	t.Logf("tracing-disabled overhead: %.3f%% (median of %d paired rounds)", overhead*100, rounds)
}

func BenchmarkPredictorTracingOff(b *testing.B) {
	m, _ := model.New("gru4rec", model.Config{CatalogSize: 10000, Seed: 1})
	s, _ := New(m, Options{Workers: 1})
	defer s.Close()
	p := <-s.rt.Load().pool
	session := []int64{3, 17, 42, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p(session, nil)
	}
}

func BenchmarkPredictorTracingOn(b *testing.B) {
	m, _ := model.New("gru4rec", model.Config{CatalogSize: 10000, Seed: 1})
	tr := trace.New(trace.Options{})
	s, _ := New(m, Options{Workers: 1, Tracer: tr})
	defer s.Close()
	p := <-s.rt.Load().pool
	session := []int64{3, 17, 42, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("bench")
		p(session, sp)
		sp.Finish()
	}
}
