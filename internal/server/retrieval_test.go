package server

import (
	"net/http/httptest"
	"testing"

	"etude/internal/ann"
	"etude/internal/httpapi"
	"etude/internal/model"
	"etude/internal/quant"
)

// TestQuantizedModelServes: a model whose exact MIPS stage is replaced by
// int8 quantised retrieval serves through the standard HTTP path and
// produces nearly identical recommendations.
func TestQuantizedModelServes(t *testing.T) {
	m, err := model.New("gru4rec", model.Config{CatalogSize: 2_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc := m.(model.Encoder)
	table, err := quant.Quantize(enc.ItemEmbeddings())
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := model.WithRetrieval(enc, table)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(wrapped, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := predict(t, ts, httpapi.PredictRequest{Items: []int64{5, 9}})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	exact := m.Recommend([]int64{5, 9})
	hits := 0
	exactSet := map[int64]bool{}
	for _, r := range exact {
		exactSet[r.Item] = true
	}
	for _, item := range out.Items {
		if exactSet[item] {
			hits++
		}
	}
	if float64(hits)/float64(len(exact)) < 0.8 {
		t.Fatalf("quantised serving recall %.2f — too lossy", float64(hits)/float64(len(exact)))
	}
}

// TestANNModelServes: same composition with IVF retrieval at full probe
// (which must be exact).
func TestANNModelServes(t *testing.T) {
	m, err := model.New("core", model.Config{CatalogSize: 1_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc := m.(model.Encoder)
	index, err := ann.Build(enc.ItemEmbeddings(), ann.Config{NLists: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := model.WithRetrieval(enc, model.RetrieverFunc(index.Retriever(16)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(wrapped, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, out := predict(t, ts, httpapi.PredictRequest{Items: []int64{7, 3}})
	exact := m.Recommend([]int64{7, 3})
	for i := range exact {
		if out.Items[i] != exact[i].Item {
			t.Fatalf("full-probe ANN serving differs at %d: %d != %d", i, out.Items[i], exact[i].Item)
		}
	}
}
