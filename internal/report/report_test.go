package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"etude/internal/buildinfo"
	"etude/internal/core"
	"etude/internal/metrics"
)

func sampleSeries() []metrics.TickStats {
	return []metrics.TickStats{
		{Tick: 0, Sent: 10, Completed: 10, Errors: 0, P50: time.Millisecond, P90: 2 * time.Millisecond, P99: 3 * time.Millisecond},
		{Tick: 1, Sent: 20, Completed: 18, Errors: 2, Degraded: 3, Retries: 1,
			Partial: 2, CoverageMean: 0.9375,
			Timeouts: 1, ServerErrors: 1,
			P50: 2 * time.Millisecond, P90: 5 * time.Millisecond, P99: 9 * time.Millisecond,
			Tenant: "b"},
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want stamp + header + 2 rows", len(lines))
	}
	info, ok := buildinfo.ParseCommentLine(lines[0])
	if !ok {
		t.Fatalf("first line is not a build stamp: %q", lines[0])
	}
	if info.GoVersion != buildinfo.Get().GoVersion {
		t.Fatalf("stamp carries wrong identity: %+v", info)
	}
	if lines[1] != SeriesHeader {
		t.Fatalf("header = %q", lines[1])
	}
	// Row 2 (tick 0) has no tenant → the placeholder "-" keeps the cell
	// non-empty; row 3 carries its tenant label.
	if !strings.HasSuffix(lines[2], ",-") {
		t.Fatalf("untenanted row = %q, want trailing \",-\"", lines[2])
	}
	if lines[3] != "1,20,18,2,3,2,0.9375,1,1,0,1,0,2.000,5.000,9.000,b" {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestWriteMeasurementsCSV(t *testing.T) {
	ms := []core.Measurement{{
		Experiment: "fig4",
		Model:      "gru4rec",
		Instance:   "gpu-t4",
		JIT:        true,
		Replicas:   5,
		TargetRate: 1000,
		Sent:       100,
		Errors:     1,
		Latency:    metrics.Snapshot{P50: time.Millisecond, P90: 4 * time.Millisecond, P99: 8 * time.Millisecond},
		MeetsSLO:   true,
	}}
	var buf bytes.Buffer
	if err := WriteMeasurementsCSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig4,gru4rec,gpu-t4,true,5,1000,100,1,0,1.000,4.000,8.000,true") {
		t.Fatalf("csv = %s", out)
	}
	if _, ok := buildinfo.ParseCommentLine(strings.SplitN(out, "\n", 2)[0]); !ok {
		t.Fatalf("measurements CSV not stamped: %s", out)
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	var buf bytes.Buffer
	m := map[string]float64{"latency/p99_ms": 12.5, "availability": 0.999, "goodput_rps": 1800}
	if err := WriteMetricsCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want stamp + header + 3 rows", len(lines))
	}
	if _, ok := buildinfo.ParseCommentLine(lines[0]); !ok {
		t.Fatalf("metrics CSV not stamped: %q", lines[0])
	}
	if lines[1] != MetricsHeader {
		t.Fatalf("header = %q", lines[1])
	}
	// Rows come back sorted by metric name.
	want := []string{"availability,0.999", "goodput_rps,1800", "latency/p99_ms,12.5"}
	for i, w := range want {
		if lines[2+i] != w {
			t.Fatalf("row %d = %q, want %q", i, lines[2+i], w)
		}
	}
}

func TestWriteMetricsCSVRejectsBadValues(t *testing.T) {
	for name, m := range map[string]map[string]float64{
		"nan":       {"x": math.NaN()},
		"inf":       {"x": math.Inf(1)},
		"neg-inf":   {"x": math.Inf(-1)},
		"comma-key": {"a,b": 1},
		"newline":   {"a\nb": 1},
	} {
		var buf bytes.Buffer
		if err := WriteMetricsCSV(&buf, m); err == nil {
			t.Fatalf("%s: invalid metric accepted", name)
		}
		if buf.Len() != 0 {
			t.Fatalf("%s: partial output written before rejection", name)
		}
	}
}

func TestWriteCSVPropagatesErrors(t *testing.T) {
	w := &failAfter{limit: 10}
	if err := WriteSeriesCSV(w, sampleSeries()); err == nil {
		t.Fatalf("write error swallowed")
	}
	if err := WriteMeasurementsCSV(&failAfter{limit: 5}, []core.Measurement{{}}); err == nil {
		t.Fatalf("write error swallowed")
	}
}

type failAfter struct{ n, limit int }

func (f *failAfter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > f.limit {
		return 0, errFull
	}
	return len(p), nil
}

type fullErr struct{}

func (fullErr) Error() string { return "full" }

var errFull = fullErr{}

func TestASCIIChart(t *testing.T) {
	out := ASCIIChart("p90 per tick (ms)", []float64{1, 2, 4}, 16)
	if !strings.Contains(out, "p90 per tick") {
		t.Fatalf("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The largest value gets the longest bar.
	if strings.Count(lines[3], "█") <= strings.Count(lines[1], "█") {
		t.Fatalf("bars not scaled:\n%s", out)
	}
	if got := ASCIIChart("empty", nil, 10); !strings.Contains(got, "(empty)") {
		t.Fatalf("empty chart rendering: %q", got)
	}
	// All-zero values: no panic, no bars.
	if got := ASCIIChart("zeros", []float64{0, 0}, 10); strings.Contains(got, "█") {
		t.Fatalf("zero values produced bars")
	}
}

func TestSeriesExtractors(t *testing.T) {
	s := sampleSeries()
	p90 := P90Series(s)
	if len(p90) != 2 || p90[1] != 5 {
		t.Fatalf("P90Series = %v", p90)
	}
	errs := ErrorSeries(s)
	if len(errs) != 2 || errs[1] != 2 {
		t.Fatalf("ErrorSeries = %v", errs)
	}
}
