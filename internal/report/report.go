// Package report turns benchmark measurements into shareable artifacts:
// CSV files (for plotting Figs 2–4 with any charting tool) and quick ASCII
// charts for terminal inspection — the counterpart of the experiments.md
// result sheets the paper's authors publish alongside their code.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"etude/internal/core"
	"etude/internal/metrics"
)

// WriteSeriesCSV writes a per-tick time series as CSV. Beyond the basic
// counters and latency quantiles it carries the degraded-response,
// partial-coverage and retry counts, the mean shard-coverage fraction, and
// the error split by kind (timeout/refused/server/other), so a plot can
// show when the failure mode shifted, not just that errors rose.
func WriteSeriesCSV(w io.Writer, series []metrics.TickStats) error {
	if _, err := fmt.Fprintln(w, "tick,sent,completed,errors,degraded,partial,coverage_mean,retries,timeouts,refused,server_errors,other_errors,p50_ms,p90_ms,p99_ms"); err != nil {
		return fmt.Errorf("report: writing header: %w", err)
	}
	for _, ts := range series {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f\n",
			ts.Tick, ts.Sent, ts.Completed, ts.Errors,
			ts.Degraded, ts.Partial, ts.CoverageMean, ts.Retries,
			ts.Timeouts, ts.Refused, ts.ServerErrors, ts.OtherErrors,
			ms(ts.P50), ms(ts.P90), ms(ts.P99))
		if err != nil {
			return fmt.Errorf("report: writing row: %w", err)
		}
	}
	return nil
}

// WriteMeasurementsCSV writes experiment measurements as CSV with one row
// per (model, instance) combination.
func WriteMeasurementsCSV(w io.Writer, ms []core.Measurement) error {
	if _, err := fmt.Fprintln(w, "experiment,model,instance,jit,replicas,target_rate,sent,errors,backpressured,p50_ms,p90_ms,p99_ms,meets_slo"); err != nil {
		return fmt.Errorf("report: writing header: %w", err)
	}
	for _, m := range ms {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%t,%d,%.0f,%d,%d,%d,%.3f,%.3f,%.3f,%t\n",
			m.Experiment, m.Model, m.Instance, m.JIT, m.Replicas, m.TargetRate,
			m.Sent, m.Errors, m.Backpressured,
			ms2(m.Latency.P50), ms2(m.Latency.P90), ms2(m.Latency.P99), m.MeetsSLO)
		if err != nil {
			return fmt.Errorf("report: writing row: %w", err)
		}
	}
	return nil
}

func ms(d time.Duration) float64  { return float64(d) / float64(time.Millisecond) }
func ms2(d time.Duration) float64 { return ms(d) }

// ASCIIChart renders a compact bar chart of one numeric series, one row per
// point, scaled to width columns. Used for terminal-side inspection of
// per-tick p90s and error counts.
func ASCIIChart(title string, values []float64, width int) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(values) == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	maxV := values[0]
	for _, v := range values[1:] {
		if v > maxV {
			maxV = v
		}
	}
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%4d │%-*s %.2f\n", i, width, strings.Repeat("█", bar), v)
	}
	return b.String()
}

// P90Series extracts the per-tick p90 in milliseconds from a series.
func P90Series(series []metrics.TickStats) []float64 {
	out := make([]float64, len(series))
	for i, ts := range series {
		out[i] = ms(ts.P90)
	}
	return out
}

// ErrorSeries extracts the per-tick error counts from a series.
func ErrorSeries(series []metrics.TickStats) []float64 {
	out := make([]float64, len(series))
	for i, ts := range series {
		out[i] = float64(ts.Errors)
	}
	return out
}
