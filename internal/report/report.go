// Package report turns benchmark measurements into shareable artifacts:
// CSV files (for plotting Figs 2–4 with any charting tool) and quick ASCII
// charts for terminal inspection — the counterpart of the experiments.md
// result sheets the paper's authors publish alongside their code.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"etude/internal/buildinfo"
	"etude/internal/core"
	"etude/internal/metrics"
)

// SeriesHeader is the column header of WriteSeriesCSV, exported so CSV
// schema validation (internal/bench) cannot drift from the writer.
const SeriesHeader = "tick,sent,completed,errors,degraded,partial,coverage_mean,retries,timeouts,refused,server_errors,other_errors,p50_ms,p90_ms,p99_ms,tenant"

// MeasurementsHeader is the column header of WriteMeasurementsCSV.
const MeasurementsHeader = "experiment,model,instance,jit,replicas,target_rate,sent,errors,backpressured,p50_ms,p90_ms,p99_ms,meets_slo"

// MetricsHeader is the column header of WriteMetricsCSV.
const MetricsHeader = "metric,value"

// stamp prepends the build-identity comment line so every CSV artifact
// names the revision, toolchain and host that produced it.
func stamp(w io.Writer) error {
	if _, err := fmt.Fprintln(w, buildinfo.Get().CommentLine()); err != nil {
		return fmt.Errorf("report: writing build stamp: %w", err)
	}
	return nil
}

// WriteSeriesCSV writes a per-tick time series as CSV, preceded by the
// build-identity comment line. Beyond the basic
// counters and latency quantiles it carries the degraded-response,
// partial-coverage and retry counts, the mean shard-coverage fraction, and
// the error split by kind (timeout/refused/server/other), so a plot can
// show when the failure mode shifted, not just that errors rose.
func WriteSeriesCSV(w io.Writer, series []metrics.TickStats) error {
	if err := stamp(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, SeriesHeader); err != nil {
		return fmt.Errorf("report: writing header: %w", err)
	}
	for _, ts := range series {
		// Single-tenant series carry "-" rather than an empty cell: the CSV
		// schema (bench.SeriesSchema) types the column as non-empty string.
		tenant := ts.Tenant
		if tenant == "" {
			tenant = "-"
		}
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%s\n",
			ts.Tick, ts.Sent, ts.Completed, ts.Errors,
			ts.Degraded, ts.Partial, ts.CoverageMean, ts.Retries,
			ts.Timeouts, ts.Refused, ts.ServerErrors, ts.OtherErrors,
			ms(ts.P50), ms(ts.P90), ms(ts.P99), tenant)
		if err != nil {
			return fmt.Errorf("report: writing row: %w", err)
		}
	}
	return nil
}

// WriteMeasurementsCSV writes experiment measurements as CSV with one row
// per (model, instance) combination, preceded by the build stamp.
func WriteMeasurementsCSV(w io.Writer, ms []core.Measurement) error {
	if err := stamp(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, MeasurementsHeader); err != nil {
		return fmt.Errorf("report: writing header: %w", err)
	}
	for _, m := range ms {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%t,%d,%.0f,%d,%d,%d,%.3f,%.3f,%.3f,%t\n",
			m.Experiment, m.Model, m.Instance, m.JIT, m.Replicas, m.TargetRate,
			m.Sent, m.Errors, m.Backpressured,
			ms2(m.Latency.P50), ms2(m.Latency.P90), ms2(m.Latency.P99), m.MeetsSLO)
		if err != nil {
			return fmt.Errorf("report: writing row: %w", err)
		}
	}
	return nil
}

// WriteMetricsCSV writes a flat metric→value map as a stamped two-column
// CSV, rows sorted by metric name so diffs are stable. NaN and Inf values
// are rejected up front: they would poison downstream aggregation and the
// schema validator would (rightly) refuse the file.
func WriteMetricsCSV(w io.Writer, m map[string]float64) error {
	keys := make([]string, 0, len(m))
	for k := range m {
		if math.IsNaN(m[k]) || math.IsInf(m[k], 0) {
			return fmt.Errorf("report: metric %q is %v, refusing to serialize", k, m[k])
		}
		if strings.ContainsAny(k, ",\n\r") {
			return fmt.Errorf("report: metric name %q contains CSV delimiters", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if err := stamp(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, MetricsHeader); err != nil {
		return fmt.Errorf("report: writing header: %w", err)
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s,%g\n", k, m[k]); err != nil {
			return fmt.Errorf("report: writing row: %w", err)
		}
	}
	return nil
}

func ms(d time.Duration) float64  { return float64(d) / float64(time.Millisecond) }
func ms2(d time.Duration) float64 { return ms(d) }

// ASCIIChart renders a compact bar chart of one numeric series, one row per
// point, scaled to width columns. Used for terminal-side inspection of
// per-tick p90s and error counts.
func ASCIIChart(title string, values []float64, width int) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(values) == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	maxV := values[0]
	for _, v := range values[1:] {
		if v > maxV {
			maxV = v
		}
	}
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%4d │%-*s %.2f\n", i, width, strings.Repeat("█", bar), v)
	}
	return b.String()
}

// P90Series extracts the per-tick p90 in milliseconds from a series.
func P90Series(series []metrics.TickStats) []float64 {
	out := make([]float64, len(series))
	for i, ts := range series {
		out[i] = ms(ts.P90)
	}
	return out
}

// ErrorSeries extracts the per-tick error counts from a series.
func ErrorSeries(series []metrics.TickStats) []float64 {
	out := make([]float64, len(series))
	for i, ts := range series {
		out[i] = float64(ts.Errors)
	}
	return out
}
