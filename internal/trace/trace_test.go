package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// manualClock is a settable virtual clock for deterministic tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *manualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("r1")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// Every method must be a no-op, not a panic.
	sp.Observe(StageMIPSTopK, time.Millisecond)
	sp.ObserveSince(StageQueueWait, 0)
	sp.SetBatchSize(4)
	_ = sp.Now()
	_ = sp.ID()
	_ = sp.StageSum()
	sp.Finish()
	sp.FinishTotal(time.Second)
	tr.ObserveBatchFlush(8)
	_ = tr.Now()
	if s := tr.StageSnapshot(StageMIPSTopK); s.Count != 0 {
		t.Fatal("nil tracer has counts")
	}
	if s := tr.TotalSnapshot(); s.Count != 0 {
		t.Fatal("nil tracer has total counts")
	}
	if ex := tr.Exemplars(); ex != nil {
		t.Fatal("nil tracer has exemplars")
	}
	if f, m, mx := tr.BatchStats(); f != 0 || m != 0 || mx != 0 {
		t.Fatal("nil tracer has batch stats")
	}
}

func TestSpanStagesAggregate(t *testing.T) {
	clk := &manualClock{}
	tr := New(Options{Clock: clk.Now})
	sp := tr.Start("r1")
	start := sp.Now()
	clk.Advance(2 * time.Millisecond)
	sp.ObserveSince(StageQueueWait, start)
	sp.Observe(StageEncoderForward, 3*time.Millisecond)
	sp.Observe(StageMIPSTopK, 5*time.Millisecond)
	clk.Advance(8 * time.Millisecond)
	if got := sp.StageSum(); got != 10*time.Millisecond {
		t.Fatalf("StageSum = %v, want 10ms", got)
	}
	sp.Finish()

	if s := tr.StageSnapshot(StageQueueWait); s.Count != 1 {
		t.Fatalf("queue-wait count = %d, want 1", s.Count)
	}
	enc := tr.StageSnapshot(StageEncoderForward)
	if enc.Count != 1 || enc.Max < 3*time.Millisecond {
		t.Fatalf("encoder snapshot = %+v", enc)
	}
	total := tr.TotalSnapshot()
	if total.Count != 1 || total.Max != 10*time.Millisecond {
		t.Fatalf("total snapshot = %+v, want count=1 max=10ms", total)
	}
	// Unused stages stay empty.
	if s := tr.StageSnapshot(StageSerialize); s.Count != 0 {
		t.Fatalf("serialize count = %d, want 0", s.Count)
	}
}

func TestObserveAccumulatesAcrossAttempts(t *testing.T) {
	tr := New(Options{Clock: (&manualClock{}).Now})
	sp := tr.Start("r1")
	sp.Observe(StageEncoderForward, time.Millisecond)
	sp.Observe(StageEncoderForward, 2*time.Millisecond)
	if got := sp.StageSum(); got != 3*time.Millisecond {
		t.Fatalf("StageSum = %v, want 3ms (attempts must sum)", got)
	}
	sp.FinishTotal(3 * time.Millisecond)
	if s := tr.StageSnapshot(StageEncoderForward); s.Count != 1 {
		t.Fatalf("encoder count = %d, want 1 (one record per span)", s.Count)
	}
}

func TestExemplarsKeepSlowest(t *testing.T) {
	clk := &manualClock{}
	tr := New(Options{Clock: clk.Now, Exemplars: 3})
	for i := 1; i <= 10; i++ {
		sp := tr.Start(fmt.Sprintf("r%d", i))
		d := time.Duration(i) * time.Millisecond
		sp.Observe(StageMIPSTopK, d)
		sp.SetBatchSize(i)
		sp.FinishTotal(d)
	}
	ex := tr.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("got %d exemplars, want 3", len(ex))
	}
	// Slowest first: r10, r9, r8.
	want := []string{"r10", "r9", "r8"}
	for i, e := range ex {
		if e.ID != want[i] {
			t.Fatalf("exemplar[%d] = %s, want %s (all: %v)", i, e.ID, want[i], ex)
		}
	}
	if ex[0].Total != 10*time.Millisecond || ex[0].Stages[StageMIPSTopK] != 10*time.Millisecond {
		t.Fatalf("exemplar[0] = %+v", ex[0])
	}
	if ex[0].BatchSize != 10 {
		t.Fatalf("exemplar batch size = %d, want 10", ex[0].BatchSize)
	}
	if ex[0].String() == "" {
		t.Fatal("empty exemplar string")
	}
}

func TestBatchStats(t *testing.T) {
	tr := New(Options{Clock: (&manualClock{}).Now})
	tr.ObserveBatchFlush(2)
	tr.ObserveBatchFlush(6)
	tr.ObserveBatchFlush(4)
	f, mean, max := tr.BatchStats()
	if f != 3 || mean != 4 || max != 6 {
		t.Fatalf("BatchStats = %d %v %d, want 3 4 6", f, mean, max)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := New(Options{}) // wall clock
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.Start(fmt.Sprintf("w%d-%d", w, i))
				sp.Observe(StageEncoderForward, time.Duration(i+1)*time.Microsecond)
				sp.Observe(StageMIPSTopK, time.Duration(i+1)*time.Microsecond)
				tr.ObserveBatchFlush(i%7 + 1)
				sp.FinishTotal(time.Duration(2*(i+1)) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.TotalSnapshot().Count; got != workers*per {
		t.Fatalf("total count = %d, want %d", got, workers*per)
	}
	if got := tr.StageSnapshot(StageMIPSTopK).Count; got != workers*per {
		t.Fatalf("mips count = %d, want %d", got, workers*per)
	}
	if ex := tr.Exemplars(); len(ex) == 0 {
		t.Fatal("no exemplars retained")
	}
}

func TestStageString(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Stages() {
		name := s.String()
		if name == "" || name == "unknown" {
			t.Fatalf("stage %d has bad name %q", s, name)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(-1).String() != "unknown" || Stage(NumStages).String() != "unknown" {
		t.Fatal("out-of-range stages must stringify as unknown")
	}
}

func TestVirtualClockFinishTotal(t *testing.T) {
	clk := &manualClock{}
	tr := New(Options{Clock: clk.Now})
	sp := tr.Start("sim-1")
	sp.Observe(StageQueueWait, 4*time.Millisecond)
	sp.Observe(StageEncoderForward, time.Millisecond)
	// Simulator computes end-to-end in virtual time independently.
	sp.FinishTotal(5 * time.Millisecond)
	total := tr.TotalSnapshot()
	if total.Count != 1 || total.Max != 5*time.Millisecond {
		t.Fatalf("total = %+v", total)
	}
}
