// Package trace implements allocation-light, request-scoped stage tracing
// for the inference pipeline — the "where does the time go" layer the
// latency reports are built on. A request's life is split into the stages
// of the paper's serving pipeline (queue wait, admission, batch assembly,
// embedding lookup, encoder forward pass, MIPS top-k, serialisation — plus,
// on sharded deployments, the scatter/wait/merge stages of the
// scatter-gather retrieval tier in internal/shard); each
// stage aggregates into a latency histogram, and a bounded tail-exemplar
// buffer retains the full span breakdown of the slowest requests so a p99
// regression can be attributed to a specific stage, not just observed.
//
// The clock is pluggable: the live server traces under the wall clock while
// the discrete-event simulator (internal/sim) traces the same spans under
// virtual time, so live and simulated breakdowns are directly comparable.
//
// Tracing is zero-cost when disabled: a nil *Tracer yields nil *Spans, and
// every Span and Tracer method is nil-safe, so instrumented code paths pay
// one pointer check per stage — nothing else (see the overhead guard in
// internal/server).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etude/internal/metrics"
)

// Stage enumerates the pipeline stages of one inference request, in
// pipeline order.
type Stage int

const (
	// StageQueueWait is time spent waiting for an execution slot: the
	// worker-pool wait on the unbatched path, and the head-of-line wait
	// inside a flushed batch (requests execute sequentially) on the batched
	// path.
	StageQueueWait Stage = iota
	// StageAdmission covers request decoding, validation and the admission
	// decision (shed / degrade / serve).
	StageAdmission
	// StageBatchAssembly is the enqueue→flush wait of the batched path: how
	// long the request sat in the batcher's buffer before the batch was
	// dispatched (bounded by the flush interval).
	StageBatchAssembly
	// StageSchedWait is the enqueue→flush wait of the scheduled path
	// (internal/sched): how long the request sat in its tenant queue before
	// the WDRR scheduler assembled it into a batch. It is the scheduled
	// counterpart of StageBatchAssembly, kept distinct so tenant-isolation
	// experiments can attribute tail movement to scheduling rather than
	// plain batching.
	StageSchedWait
	// StageEmbeddingLookup is the session-item embedding gather.
	StageEmbeddingLookup
	// StageEncoderForward is the architecture-specific session encoder —
	// the C-independent term of the paper's cost decomposition.
	StageEncoderForward
	// StageMIPSTopK is the maximum-inner-product scan over the catalog plus
	// top-k selection — the O(C·(d+log k)) term that dominates at scale.
	StageMIPSTopK
	// StageShardScatter is the scatter half of the sharded retrieval tier
	// (internal/shard): fanning the session representation out to the
	// per-shard top-k workers.
	StageShardScatter
	// StageShardWait is the gather wait of the sharded tier: from scatter
	// completion until the last partial top-k arrives — the straggler term
	// that tail-latency hedging attacks.
	StageShardWait
	// StageShardMerge is the k-way merge of the partial top-k lists into
	// the exact global top-k.
	StageShardMerge
	// StagePartialMerge is the degraded variant of StageShardMerge: the
	// k-way merge over a strict subset of shard groups after the
	// partial-result policy dropped failed or straggling shards. Keeping it
	// distinct from StageShardMerge lets the breakdown separate full-
	// coverage merges from degraded ones.
	StagePartialMerge
	// StageSerialize is response encoding.
	StageSerialize
	// NumStages is the number of stages (array sizing).
	NumStages
)

var stageNames = [NumStages]string{
	"queue-wait", "admission", "batch-assembly", "sched-wait", "embedding-lookup",
	"encoder-forward", "mips-topk", "shard-scatter", "shard-wait",
	"shard-merge", "partial-merge", "serialize",
}

// String names the stage for reports and metric labels.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists all stages in pipeline order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageByName is the inverse of Stage.String — it resolves a stage from
// its metric-label name (e.g. "mips-topk"), for callers that address
// stages from configuration or serialized metric keys.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Clock supplies monotonic timestamps as offsets from an arbitrary epoch.
// The live server uses WallClock; the simulator plugs in its virtual-time
// engine.
type Clock func() time.Duration

// WallClock returns a Clock reading the process monotonic clock.
func WallClock() Clock {
	epoch := time.Now()
	return func() time.Duration { return time.Since(epoch) }
}

// Options configures a Tracer.
type Options struct {
	// Clock supplies timestamps (default: WallClock()).
	Clock Clock
	// Exemplars bounds the tail-exemplar buffer: the full span breakdowns
	// of the Exemplars slowest requests are retained (default 8; negative
	// disables exemplar retention).
	Exemplars int
}

// Tracer aggregates request spans: per-stage latency histograms, an
// end-to-end histogram, batch-size statistics and the tail-exemplar buffer.
// All methods are safe for concurrent use and nil-safe — a nil *Tracer is
// the disabled tracer.
type Tracer struct {
	clock     Clock
	stages    [NumStages]*metrics.Histogram
	total     *metrics.Histogram
	exemplarN int

	// batch-size-at-flush statistics (sizes are small ints, not durations,
	// so they get plain atomics instead of a latency histogram).
	batchFlushes atomic.Int64
	batchSum     atomic.Int64
	batchMax     atomic.Int64

	// errors counts spans finished with FinishError — requests that reached
	// service but failed. Their stage costs still land in the aggregates
	// (the work was done), unlike Discarded spans which never served.
	errors atomic.Int64

	// exemplarFloor caches the smallest total in the exemplar buffer so the
	// hot path can skip the lock for ordinary requests.
	exemplarFloor atomic.Int64
	exMu          sync.Mutex
	exemplars     []Exemplar // min-heap by Total

	pool sync.Pool
}

// New builds a Tracer.
func New(opts Options) *Tracer {
	if opts.Clock == nil {
		opts.Clock = WallClock()
	}
	if opts.Exemplars == 0 {
		opts.Exemplars = 8
	}
	if opts.Exemplars < 0 {
		opts.Exemplars = 0
	}
	t := &Tracer{clock: opts.Clock, total: metrics.NewHistogram(), exemplarN: opts.Exemplars}
	for i := range t.stages {
		t.stages[i] = metrics.NewHistogram()
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Now reads the tracer's clock (zero for a nil tracer).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Start opens a span for one request. A nil tracer returns a nil span;
// every Span method is nil-safe, so callers never branch on enablement.
func (t *Tracer) Start(id string) *Span {
	if t == nil {
		return nil
	}
	sp := t.pool.Get().(*Span)
	*sp = Span{t: t, id: id, start: t.clock()}
	return sp
}

// ObserveBatchFlush notes one batch dispatch of the given size.
func (t *Tracer) ObserveBatchFlush(size int) {
	if t == nil {
		return
	}
	t.batchFlushes.Add(1)
	t.batchSum.Add(int64(size))
	for {
		cur := t.batchMax.Load()
		if int64(size) <= cur || t.batchMax.CompareAndSwap(cur, int64(size)) {
			return
		}
	}
}

// BatchStats returns the number of batch flushes, the mean batch size and
// the largest batch dispatched.
func (t *Tracer) BatchStats() (flushes int64, mean float64, max int64) {
	if t == nil {
		return 0, 0, 0
	}
	flushes = t.batchFlushes.Load()
	if flushes > 0 {
		mean = float64(t.batchSum.Load()) / float64(flushes)
	}
	return flushes, mean, t.batchMax.Load()
}

// StageSnapshot summarises one stage's latency distribution.
func (t *Tracer) StageSnapshot(s Stage) metrics.Snapshot {
	if t == nil || s < 0 || s >= NumStages {
		return metrics.Snapshot{}
	}
	return t.stages[s].Snapshot()
}

// TotalSnapshot summarises the end-to-end (request-receipt to
// response-write) latency distribution.
func (t *Tracer) TotalSnapshot() metrics.Snapshot {
	if t == nil {
		return metrics.Snapshot{}
	}
	return t.total.Snapshot()
}

// Exemplar is the retained breakdown of one slow request.
type Exemplar struct {
	ID        string        `json:"id"`
	Total     time.Duration `json:"total"`
	BatchSize int           `json:"batch_size,omitempty"`
	Failed    bool          `json:"failed,omitempty"`
	Stages    [NumStages]time.Duration
}

// String renders the exemplar compactly for reports.
func (e Exemplar) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s total=%s", e.ID, e.Total.Round(time.Microsecond))
	if e.BatchSize > 1 {
		fmt.Fprintf(&b, " batch=%d", e.BatchSize)
	}
	if e.Failed {
		b.WriteString(" FAILED")
	}
	for s, d := range e.Stages {
		if d > 0 {
			fmt.Fprintf(&b, " %s=%s", Stage(s), d.Round(time.Microsecond))
		}
	}
	return b.String()
}

// Exemplars returns the retained slowest-request breakdowns, slowest first.
func (t *Tracer) Exemplars() []Exemplar {
	if t == nil {
		return nil
	}
	t.exMu.Lock()
	out := append([]Exemplar(nil), t.exemplars...)
	t.exMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// offer inserts a finished span into the exemplar buffer when it is slower
// than the current floor.
func (t *Tracer) offer(sp *Span, total time.Duration) {
	if t.exemplarN == 0 {
		return
	}
	if int64(total) <= t.exemplarFloor.Load() {
		return // fast path: not a tail request
	}
	ex := Exemplar{ID: sp.id, Total: total, BatchSize: sp.batch, Failed: sp.failed, Stages: sp.stages}
	t.exMu.Lock()
	if len(t.exemplars) < t.exemplarN {
		t.exemplars = append(t.exemplars, ex)
	} else {
		// Replace the current minimum (the buffer is small — N≈8 — so a
		// linear scan beats heap bookkeeping).
		minIdx := 0
		for i, e := range t.exemplars {
			if e.Total < t.exemplars[minIdx].Total {
				minIdx = i
			}
			_ = e
		}
		if total > t.exemplars[minIdx].Total {
			t.exemplars[minIdx] = ex
		}
	}
	if len(t.exemplars) == t.exemplarN {
		floor := t.exemplars[0].Total
		for _, e := range t.exemplars[1:] {
			if e.Total < floor {
				floor = e.Total
			}
		}
		t.exemplarFloor.Store(int64(floor))
	}
	t.exMu.Unlock()
}

// Span is the per-request trace: one duration slot per stage plus the
// request's end-to-end time. Spans are pooled; after Finish (or
// FinishTotal) the span must not be touched. All methods are nil-safe.
//
// A span is written by one goroutine at a time: hand-offs between the
// request goroutine and the batch dispatcher are sequenced by the batcher's
// reply channel. A request that abandons its span mid-flight (client
// cancellation while batched) must simply drop the pointer — see Server's
// predict handler — so the dispatcher's late writes land on garbage, not on
// a recycled span.
type Span struct {
	t      *Tracer
	id     string
	start  time.Duration
	batch  int
	failed bool

	stages [NumStages]time.Duration
}

// ID returns the request id the span was started with.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Now reads the owning tracer's clock (zero for a nil span).
func (s *Span) Now() time.Duration {
	if s == nil {
		return 0
	}
	return s.t.clock()
}

// Observe adds d to the stage's accumulated duration. Multiple attempts of
// the same stage sum (a retried stage reports its total cost).
func (s *Span) Observe(st Stage, d time.Duration) {
	if s == nil || st < 0 || st >= NumStages || d <= 0 {
		return
	}
	s.stages[st] += d
}

// ObserveSince observes now-from for the stage — the usual "mark the start,
// observe at the end" pattern.
func (s *Span) ObserveSince(st Stage, from time.Duration) {
	if s == nil {
		return
	}
	s.Observe(st, s.t.clock()-from)
}

// SetBatchSize notes the size of the batch the request was served in.
func (s *Span) SetBatchSize(n int) {
	if s == nil {
		return
	}
	s.batch = n
}

// Finish closes the span with end-to-end time measured on the tracer's
// clock and folds it into the aggregates. The span is recycled: callers
// must drop every reference.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.FinishTotal(s.t.clock() - s.start)
}

// FinishTotal closes the span with an explicitly measured end-to-end time —
// the entry point for the simulator, whose request lifetime is tracked in
// virtual time outside the span.
func (s *Span) FinishTotal(total time.Duration) {
	if s == nil {
		return
	}
	t := s.t
	for st, d := range s.stages {
		if d > 0 {
			t.stages[st].Record(d)
		}
	}
	if total > 0 {
		t.total.Record(total)
		t.offer(s, total)
	}
	*s = Span{}
	t.pool.Put(s)
}

// FinishError closes the span as a failed request: stage costs and the
// end-to-end time still fold into the aggregates — the work was done and a
// tail analysis that silently drops failures lies about where time went —
// and the tracer's error count increments. The exemplar, if retained, is
// marked Failed. Like Finish, the span must not be touched after.
func (s *Span) FinishError() {
	if s == nil {
		return
	}
	s.FinishErrorTotal(s.t.clock() - s.start)
}

// FinishErrorTotal is FinishError with an explicitly measured end-to-end
// time (the simulator's entry point).
func (s *Span) FinishErrorTotal(total time.Duration) {
	if s == nil {
		return
	}
	s.failed = true
	s.t.errors.Add(1)
	s.FinishTotal(total)
}

// ErrorCount returns how many spans finished with an error outcome.
func (t *Tracer) ErrorCount() int64 {
	if t == nil {
		return 0
	}
	return t.errors.Load()
}

// Discard recycles the span without recording anything — for requests that
// never reached service (shed, malformed) and would otherwise pollute the
// stage distributions. Like Finish, the span must not be touched after.
// Do NOT call Discard on a span another goroutine may still write (e.g. a
// batched request whose Submit was cancelled): abandon it instead by
// dropping the pointer.
func (s *Span) Discard() {
	if s == nil {
		return
	}
	t := s.t
	*s = Span{}
	t.pool.Put(s)
}

// StageSum returns the sum of the span's stage durations so far (useful in
// tests asserting stage/total reconciliation).
func (s *Span) StageSum() time.Duration {
	if s == nil {
		return 0
	}
	var sum time.Duration
	for _, d := range s.stages {
		sum += d
	}
	return sum
}
