package leakcheck

import (
	"os"
	"os/exec"
	"testing"
)

func TestChildProcsDetectsLiveChild(t *testing.T) {
	if !procfsAvailable() {
		t.Skip("no /proc on this platform")
	}
	cmd := exec.Command("sleep", "60")
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot start helper child: %v", err)
	}
	pid := cmd.Process.Pid

	found := false
	for _, p := range childProcs(os.Getpid(), "sleep") {
		if p == pid {
			found = true
		}
	}
	if !found {
		t.Fatalf("childProcs did not find live child %d", pid)
	}

	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	for _, p := range childProcs(os.Getpid(), "sleep") {
		if p == pid {
			t.Fatalf("childProcs still lists reaped child %d", pid)
		}
	}
}

// The guard itself must pass on a test that cleans up its children.
func TestNoChildProcsCleanTest(t *testing.T) {
	NoChildProcs(t, "sleep")
	cmd := exec.Command("sleep", "60")
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot start helper child: %v", err)
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
}
