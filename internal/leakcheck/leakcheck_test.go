package leakcheck

import (
	"testing"
	"time"
)

func TestCheckPassesWhenGoroutinesSettle(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond) // still alive when the body ends
		close(done)
	}()
	_ = done
}

func TestCheckToleratesNoGoroutines(t *testing.T) {
	Check(t)
}
