package leakcheck

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// NoChildProcs registers a cleanup that fails the test if this process
// still has live child processes whose command name contains `name` after
// the test body returns — the orphan guard for tests that exec real server
// binaries. Like Check, it polls before declaring a leak: a child reaped
// an instant after the test body returns (SIGKILL delivered, wait racing)
// is not an orphan.
//
// The scan walks /proc (PPid from /proc/<pid>/status, command from
// /proc/<pid>/comm); on platforms without /proc the guard is a silent
// no-op rather than a false failure.
func NoChildProcs(t testing.TB, name string) {
	t.Helper()
	if !procfsAvailable() {
		return
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			orphans := childProcs(os.Getpid(), name)
			if len(orphans) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("leakcheck: %d orphaned %q child process(es) after settle window: pids %v",
					len(orphans), name, orphans)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}

func procfsAvailable() bool {
	_, err := os.Stat("/proc/self/status")
	return err == nil
}

// childProcs lists live PIDs whose parent is ppid and whose comm contains
// name. Read errors are skipped: a process that exited mid-scan is exactly
// the case we do not want to report.
func childProcs(ppid int, name string) []int {
	entries, err := os.ReadDir("/proc")
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		status, err := os.ReadFile(filepath.Join("/proc", e.Name(), "status"))
		if err != nil {
			continue
		}
		if parsePPid(string(status)) != ppid {
			continue
		}
		comm, err := os.ReadFile(filepath.Join("/proc", e.Name(), "comm"))
		if err != nil {
			continue
		}
		if strings.Contains(strings.TrimSpace(string(comm)), name) {
			out = append(out, pid)
		}
	}
	return out
}

func parsePPid(status string) int {
	for _, line := range strings.Split(status, "\n") {
		if rest, ok := strings.CutPrefix(line, "PPid:"); ok {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				return -1
			}
			return n
		}
	}
	return -1
}
