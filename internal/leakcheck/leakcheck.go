// Package leakcheck is a hand-rolled goroutine-leak guard for tests: it
// snapshots runtime.NumGoroutine at registration and, at cleanup, polls
// until the count settles back to the starting level. Servers, drains and
// gateways spawn goroutines per request — early-drop paths (deadline
// expiry, CoDel sheds, adaptive-limit rejections) are exactly where a
// forgotten worker slot or an unanswered reply channel would strand one.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check registers a cleanup that fails the test if the goroutine count has
// not settled back to its value at the time of the Check call. Call it
// first in the test, before anything under test starts goroutines.
//
// The settle loop tolerates goroutines that are still winding down when
// the test body returns (HTTP keep-alives, drain completions): it polls
// for up to two seconds before declaring a leak, and dumps all stacks on
// failure so the stuck goroutine is identifiable.
func Check(t testing.TB) {
	t.Helper()
	start := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= start {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				sz := runtime.Stack(buf, true)
				t.Errorf("leakcheck: %d goroutines at start, %d after settle window\n%s", start, n, buf[:sz])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
