package chaos

import (
	"bytes"
	"testing"
	"time"

	"etude/internal/deploy"
	"etude/internal/model"
	"etude/internal/objstore"
	"etude/internal/sim"
)

func TestCorruptArtifactBitflip(t *testing.T) {
	b := objstore.NewMemBucket()
	orig := []byte("the weights of a recommendation model")
	if err := b.Put("w", orig); err != nil {
		t.Fatal(err)
	}
	if err := CorruptArtifact(b, "w", CorruptBitflip, 7); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("w")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("bitflip changed length %d -> %d", len(orig), len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
			if x := got[i] ^ orig[i]; x&(x-1) != 0 {
				t.Fatalf("byte %d differs by more than one bit: %08b", i, x)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bitflip changed %d bytes, want exactly 1", diff)
	}

	// Same seed, same damage: replay determinism.
	b2 := objstore.NewMemBucket()
	_ = b2.Put("w", orig)
	if err := CorruptArtifact(b2, "w", CorruptBitflip, 7); err != nil {
		t.Fatal(err)
	}
	got2, _ := b2.Get("w")
	if !bytes.Equal(got, got2) {
		t.Fatal("same seed produced different corruption")
	}
}

func TestCorruptArtifactTruncate(t *testing.T) {
	b := objstore.NewMemBucket()
	orig := make([]byte, 100)
	if err := b.Put("w", orig); err != nil {
		t.Fatal(err)
	}
	if err := CorruptArtifact(b, "w", CorruptTruncate, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := b.Get("w")
	if len(got) != 50 {
		t.Fatalf("truncate left %d bytes, want 50", len(got))
	}
}

func TestCorruptArtifactTorn(t *testing.T) {
	b := objstore.NewMemBucket()
	if err := b.Put("w", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := CorruptArtifact(b, "w", CorruptTorn, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("w"); err == nil {
		t.Fatal("torn artifact still readable")
	}
	// Tearing what was never written is how a torn publish looks: no error.
	if err := CorruptArtifact(b, "w", CorruptTorn, 1); err != nil {
		t.Fatalf("torn on missing key: %v", err)
	}
}

func TestCorruptArtifactErrors(t *testing.T) {
	b := objstore.NewMemBucket()
	if err := CorruptArtifact(b, "w", "gamma-ray", 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := CorruptArtifact(b, "missing", CorruptBitflip, 1); err == nil {
		t.Fatal("bitflip on missing key succeeded")
	}
	_ = b.Put("empty", nil)
	if err := CorruptArtifact(b, "empty", CorruptBitflip, 1); err == nil {
		t.Fatal("bitflip on empty object succeeded")
	}
}

func TestValidateArtifactFault(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"valid", Fault{Kind: FaultArtifactCorrupt, Artifact: "k", Mode: CorruptBitflip}, true},
		{"no key", Fault{Kind: FaultArtifactCorrupt, Mode: CorruptTorn}, false},
		{"bad mode", Fault{Kind: FaultArtifactCorrupt, Artifact: "k", Mode: "rot13"}, false},
	}
	for _, tc := range cases {
		err := Scenario{Name: tc.name, Faults: []Fault{tc.f}}.Validate(0)
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestInjectorArmsArtifactCorruption(t *testing.T) {
	sc := CorruptedPublish("w", CorruptTruncate, 10*time.Millisecond)
	eng := sim.NewEngine()

	// Without a bucket the scenario is unroutable — Arm must say so.
	if err := NewInjector(sc).Arm(eng, nil); err == nil {
		t.Fatal("Arm accepted an artifact fault with no bucket")
	}

	b := objstore.NewMemBucket()
	_ = b.Put("w", make([]byte, 64))
	inj := NewInjector(sc)
	inj.SetBucket(b)
	if err := inj.Arm(eng, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run(5 * time.Millisecond)
	if got, _ := b.Get("w"); len(got) != 64 {
		t.Fatal("artifact damaged before the fault's At offset")
	}
	eng.Run(20 * time.Millisecond)
	if got, _ := b.Get("w"); len(got) != 32 {
		t.Fatalf("artifact has %d bytes after fault window, want 32", len(got))
	}
}

func TestProcDriverCorruptsArtifact(t *testing.T) {
	b := objstore.NewMemBucket()
	_ = b.Put("w", make([]byte, 64))
	sc := CorruptedPublish("w", CorruptTorn, 0)
	d := NewProcDriver(sc, nil).SetBucket(b)
	d.Start()
	defer d.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := b.Get("w"); err != nil {
			return // torn: the object is gone
		}
		if time.Now().After(deadline) {
			t.Fatal("driver never applied the artifact fault")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCorruptedReleaseFailsVerify ties the fault to its defence: a release
// damaged by any corruption mode must fail the store's checksum
// verification and refuse to load.
func TestCorruptedReleaseFailsVerify(t *testing.T) {
	for _, mode := range []string{CorruptBitflip, CorruptTruncate, CorruptTorn} {
		t.Run(mode, func(t *testing.T) {
			bucket := objstore.NewMemBucket()
			store := deploy.NewStore(bucket)
			cfg := model.Config{CatalogSize: 100, Seed: 1}
			m, err := model.New("gru4rec", cfg)
			if err != nil {
				t.Fatal(err)
			}
			weights, err := model.SaveWeights(m)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := store.Publish(model.Manifest{Model: "gru4rec", Config: cfg}, weights, "")
			if err != nil {
				t.Fatal(err)
			}
			if err := CorruptArtifact(bucket, rel.Artifacts[0].Key, mode, 3); err != nil {
				t.Fatal(err)
			}
			if err := store.Verify(rel); err == nil {
				t.Fatal("corrupted release passed verification")
			}
			if _, err := store.Load(rel); err == nil {
				t.Fatal("corrupted release loaded")
			}
		})
	}
}
