// Package chaos is the fault-injection and resilience layer of the
// reproduction. The paper's framework measures session-based recommendation
// serving on the happy path only; production recommendation serving is
// dominated by how the system behaves when pods crash, nodes degrade and
// networks drop packets. This package makes those degraded scenarios
// first-class, measurable citizens on both execution substrates:
//
//   - simulated: a deterministic, seedable Injector arms fault events
//     (crash/restart, slow node, network delay/drop, AZ outage) on the
//     discrete-event engine, and RunSim replays Algorithm 2's schedule with
//     the full resilience stack — health-aware routing with per-pod circuit
//     breakers, client retries with exponential backoff and a retry budget,
//     server-side admission control and graceful degradation;
//   - live: the same scenario spec drives an http.RoundTripper wrapper
//     (client-side network faults) and a pod middleware (crash windows answer
//     503), hooked into internal/cluster's pod lifecycle.
//
// Everything is driven by explicit seeds and, in simulation, a virtual
// clock, so a chaos experiment is exactly reproducible.
package chaos

import (
	"fmt"
	"time"
)

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// FaultPodCrash takes one pod down at At; it restarts (empty queue,
	// readiness passed) after Duration. Duration 0 means no restart.
	FaultPodCrash FaultKind = iota
	// FaultSlowPod multiplies one pod's service times by Factor during
	// [At, At+Duration) — a thermally throttled or noisy-neighbour node.
	FaultSlowPod
	// FaultNetworkDelay adds Delay to every request issued during
	// [At, At+Duration).
	FaultNetworkDelay
	// FaultNetworkDrop drops each request issued during [At, At+Duration)
	// with probability Prob (the client observes a reset/timeout).
	FaultNetworkDrop
	// FaultAZOutage takes every pod listed in Pods down during
	// [At, At+Duration) — a full availability-zone outage window.
	FaultAZOutage
	// FaultLoadSpike multiplies the offered request rate by Factor during
	// [At, At+Duration) — a flash crowd. Unlike the other kinds it faults
	// the demand side, not the fleet: the load schedule consults
	// Injector.LoadFactor when laying out each tick.
	FaultLoadSpike
	// FaultArtifactCorrupt damages one object in the shared release bucket
	// at At: Artifact names the key and Mode how it breaks (CorruptBitflip,
	// CorruptTruncate, CorruptTorn). Unlike the pod faults it targets the
	// storage plane — both substrates share the bucket, so the same fault
	// hits in-process and real-process fleets identically. Duration is
	// meaningless: corruption does not heal.
	FaultArtifactCorrupt
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultPodCrash:
		return "pod-crash"
	case FaultSlowPod:
		return "slow-pod"
	case FaultNetworkDelay:
		return "net-delay"
	case FaultNetworkDrop:
		return "net-drop"
	case FaultAZOutage:
		return "az-outage"
	case FaultLoadSpike:
		return "load-spike"
	case FaultArtifactCorrupt:
		return "artifact-corrupt"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one scheduled fault. Times are offsets from the start of the run
// (virtual time in simulation, wall time since Injector.Start in live mode).
type Fault struct {
	Kind FaultKind `json:"kind"`
	// At is when the fault begins.
	At time.Duration `json:"at"`
	// Duration is how long the fault lasts (see the kind for semantics).
	Duration time.Duration `json:"duration"`
	// Pod targets one pod index (FaultPodCrash, FaultSlowPod).
	Pod int `json:"pod,omitempty"`
	// Pods targets a pod group (FaultAZOutage).
	Pods []int `json:"pods,omitempty"`
	// Factor is the service-time multiplier (FaultSlowPod).
	Factor float64 `json:"factor,omitempty"`
	// Delay is the added per-request latency (FaultNetworkDelay).
	Delay time.Duration `json:"delay,omitempty"`
	// Prob is the per-request drop probability (FaultNetworkDrop).
	Prob float64 `json:"prob,omitempty"`
	// Artifact is the bucket key to damage (FaultArtifactCorrupt).
	Artifact string `json:"artifact,omitempty"`
	// Mode is how the artifact breaks (FaultArtifactCorrupt): one of
	// CorruptBitflip, CorruptTruncate, CorruptTorn.
	Mode string `json:"mode,omitempty"`
}

// active reports whether t falls inside the fault window.
func (f Fault) active(t time.Duration) bool {
	return t >= f.At && (f.Duration <= 0 || t < f.At+f.Duration)
}

// Scenario is a named set of faults injected into one benchmark run.
type Scenario struct {
	Name   string  `json:"name"`
	Faults []Fault `json:"faults"`
	// Seed drives the scenario's probabilistic faults (drops, jitter).
	Seed int64 `json:"seed"`
}

// Validate rejects malformed scenarios before they are armed.
func (s Scenario) Validate(pods int) error {
	for i, f := range s.Faults {
		if f.At < 0 {
			return fmt.Errorf("chaos: fault %d of %q starts at negative time %v", i, s.Name, f.At)
		}
		switch f.Kind {
		case FaultPodCrash, FaultSlowPod:
			if f.Pod < 0 || f.Pod >= pods {
				return fmt.Errorf("chaos: fault %d of %q targets pod %d outside fleet of %d", i, s.Name, f.Pod, pods)
			}
			if f.Kind == FaultSlowPod && f.Factor <= 0 {
				return fmt.Errorf("chaos: fault %d of %q has non-positive slowdown factor", i, s.Name)
			}
		case FaultAZOutage:
			for _, p := range f.Pods {
				if p < 0 || p >= pods {
					return fmt.Errorf("chaos: fault %d of %q includes pod %d outside fleet of %d", i, s.Name, p, pods)
				}
			}
		case FaultNetworkDrop:
			if f.Prob < 0 || f.Prob > 1 {
				return fmt.Errorf("chaos: fault %d of %q has drop probability %v outside [0,1]", i, s.Name, f.Prob)
			}
		case FaultNetworkDelay:
			if f.Delay < 0 {
				return fmt.Errorf("chaos: fault %d of %q has negative delay", i, s.Name)
			}
		case FaultLoadSpike:
			if f.Factor <= 0 {
				return fmt.Errorf("chaos: fault %d of %q has non-positive load factor", i, s.Name)
			}
		case FaultArtifactCorrupt:
			if f.Artifact == "" {
				return fmt.Errorf("chaos: fault %d of %q names no artifact key", i, s.Name)
			}
			if !ValidCorruptMode(f.Mode) {
				return fmt.Errorf("chaos: fault %d of %q has unknown corruption mode %q", i, s.Name, f.Mode)
			}
		default:
			return fmt.Errorf("chaos: fault %d of %q has unknown kind %d", i, s.Name, int(f.Kind))
		}
	}
	return nil
}

// Catalog returns the standard fault scenarios for a run of the given
// length over a fleet of `pods` replicas, with fault windows placed
// proportionally so the same scenario shapes replay at test and paper
// scale:
//
//   - baseline: no faults (the control group);
//   - pod-crash: pod 0 dies at 30% of the run and restarts 20% later;
//   - slow-node: pod 1 serves 4× slower during the middle half;
//   - network-degraded: +2ms delay and 2% drops during the middle half;
//   - az-outage: the first half of the fleet is down from 40% to 60%.
func Catalog(runLen time.Duration, pods int) []Scenario {
	frac := func(x float64) time.Duration { return time.Duration(float64(runLen) * x) }
	az := make([]int, 0, pods/2)
	for i := 0; i < pods/2; i++ {
		az = append(az, i)
	}
	slowPod := 0
	if pods > 1 {
		slowPod = 1
	}
	return []Scenario{
		{Name: "baseline", Seed: 1},
		{Name: "pod-crash", Seed: 1, Faults: []Fault{
			{Kind: FaultPodCrash, At: frac(0.3), Duration: frac(0.2), Pod: 0},
		}},
		{Name: "slow-node", Seed: 1, Faults: []Fault{
			{Kind: FaultSlowPod, At: frac(0.25), Duration: frac(0.5), Pod: slowPod, Factor: 4},
		}},
		{Name: "network-degraded", Seed: 1, Faults: []Fault{
			{Kind: FaultNetworkDelay, At: frac(0.25), Duration: frac(0.5), Delay: 2 * time.Millisecond},
			{Kind: FaultNetworkDrop, At: frac(0.25), Duration: frac(0.5), Prob: 0.02},
		}},
		{Name: "az-outage", Seed: 1, Faults: []Fault{
			{Kind: FaultAZOutage, At: frac(0.4), Duration: frac(0.2), Pods: az},
		}},
	}
}

// Overload returns the overload scenario: the offered rate steps to 3× the
// configured target during the middle [0.2, 0.8) of the run — warm-up at
// nominal load first, so adaptive admission trains its no-load latency
// baseline before the flash crowd hits. This is the scenario the
// EXPERIMENT=overload comparison replays against static-bound and adaptive
// (CoDel + AIMD + deadline budget) admission; it is deliberately not part
// of Catalog, whose rows the standing chaos experiment depends on.
func Overload(runLen time.Duration) Scenario {
	frac := func(x float64) time.Duration { return time.Duration(float64(runLen) * x) }
	return Scenario{Name: "overload", Seed: 1, Faults: []Fault{
		{Kind: FaultLoadSpike, At: frac(0.2), Duration: frac(0.6), Factor: 3},
	}}
}

// SlowShard returns the scatter-gather straggler scenario: one shard
// worker's service times are multiplied by factor for the whole run. In a
// sharded fleet (shard.SimFleet's flat pod order: shard s, replica r at
// s·replicas+r) every request fans out to all shards, so a single slow
// worker drags the whole fleet's tail — the fault class tail-latency
// hedging exists to absorb.
func SlowShard(runLen time.Duration, pod int, factor float64) Scenario {
	return Scenario{Name: "slow-shard", Seed: 1, Faults: []Fault{
		{Kind: FaultSlowPod, At: 0, Duration: runLen, Pod: pod, Factor: factor},
	}}
}

// ShardBlackout returns the shard-group outage scenario: at time `at`,
// every replica of shard group `group` goes down and never comes back
// (Duration 0 = forever). Pod indices follow the fleet's flat order (shard
// s, replica r at s·replicas+r), so the fault takes out pods
// [group·replicas, (group+1)·replicas) — the failure mode that turns a
// fail-fast scatter-gather tier's availability to ~0% while (S−1)/S of the
// catalog is still perfectly healthy. On real-process fleets the
// ProcDriver delivers it as SIGKILL to each pod in the group.
func ShardBlackout(group, replicas int, at time.Duration) Scenario {
	pods := make([]int, replicas)
	for r := range pods {
		pods[r] = group*replicas + r
	}
	return Scenario{Name: "shard-blackout", Seed: 1, Faults: []Fault{
		{Kind: FaultAZOutage, At: at, Pods: pods},
	}}
}

// CorruptedPublish returns the supply-chain-gone-wrong scenario: the
// artifact at `key` is damaged in mode `mode` at time `at` — a bit rotted
// on the wire, a copy cut short, or a publish that died between artifact
// and manifest. The release store's per-artifact checksums are the defence
// this scenario exists to exercise: a corrupted release must quarantine,
// never serve.
func CorruptedPublish(key, mode string, at time.Duration) Scenario {
	return Scenario{Name: "corrupted-publish", Seed: 1, Faults: []Fault{
		{Kind: FaultArtifactCorrupt, At: at, Artifact: key, Mode: mode},
	}}
}
