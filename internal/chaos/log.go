package chaos

import (
	"io"
	"log/slog"
	"sync/atomic"
)

// Chaos emits structured diagnostics — signals delivered, faults armed —
// through one package-level logger, discarding by default so tests stay
// quiet (the same convention as internal/cluster).
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(discardLogger())
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// SetLogger routes the package's diagnostic events to l. A nil l restores
// the default discarding logger.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = discardLogger()
	}
	logger.Store(l)
}

// logEvent returns the current diagnostics logger.
func logEvent() *slog.Logger { return logger.Load() }
