package chaos

import (
	"sync"
	"time"
)

// This file routes scenario faults to real operating-system processes.
// Against the in-process backend a "crash" is a middleware answering 503;
// against the process backend the same Fault becomes an actual POSIX
// signal against an actual PID:
//
//	FaultPodCrash  → SIGKILL        (the kernel tears the pod down;
//	                                 recovery is whatever supervision
//	                                 exists, not a scripted restart)
//	FaultSlowPod   → SIGSTOP/SIGCONT duty-cycling (the pod only gets
//	                                 1/Factor of wall time, so service
//	                                 times stretch ~Factor×)
//	FaultAZOutage  → group SIGKILL
//
// Network faults (delay, drop) and load spikes are deliberately not
// routed: they are client-side by construction — Injector.RoundTripper
// and the load schedule impose them identically on both backends.
// Artifact-corruption faults are storage-side: attach the shared bucket
// with SetBucket and the driver damages the named objects on schedule —
// real processes observe the corruption through the same filesystem
// bucket the driver writes.
//
// The driver addresses pods by replica ordinal through a narrow interface
// so this package stays decoupled from internal/cluster; cluster.Service
// satisfies it. Signals to departed ordinals are dropped by the target
// (a fault must not follow a restarted pod's replacement), matching the
// middleware semantics.

// SignalTarget delivers a POSIX signal by name ("KILL", "STOP", "CONT",
// "TERM") to the pod with the given replica ordinal. Missing ordinals are
// not errors.
type SignalTarget interface {
	SignalPod(replica int, sig string) error
}

// slowPodPeriod is one SIGSTOP/SIGCONT duty cycle. Short enough that a
// stopped interval delays requests rather than timing them out, long
// enough that signal delivery overhead stays negligible.
const slowPodPeriod = 40 * time.Millisecond

// ProcDriver replays a scenario's fleet faults as signals against real
// process pods. Create with NewProcDriver, arm with Start (fault offsets
// are measured from that call), and always Stop — it cancels pending
// faults and lifts any SIGSTOP still in force.
type ProcDriver struct {
	scenario Scenario
	target   SignalTarget
	bucket   BucketTarget

	mu      sync.Mutex
	stop    chan struct{}
	started bool
	wg      sync.WaitGroup
}

// NewProcDriver returns an unarmed driver for the scenario.
func NewProcDriver(s Scenario, target SignalTarget) *ProcDriver {
	return &ProcDriver{scenario: s, target: target, stop: make(chan struct{})}
}

// SetBucket attaches the object-store bucket artifact-corruption faults
// apply to, returning the driver for chaining. Scenarios carrying
// FaultArtifactCorrupt need one before Start; without it those faults are
// skipped with a warning.
func (d *ProcDriver) SetBucket(b BucketTarget) *ProcDriver {
	d.bucket = b
	return d
}

// Start arms every routable fault, with At offsets measured from now.
// Start is one-shot; further calls are no-ops.
func (d *ProcDriver) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()

	for _, f := range d.scenario.Faults {
		f := f
		switch f.Kind {
		case FaultPodCrash:
			d.after(f.At, func() { d.signal(f.Pod, "KILL") })
		case FaultAZOutage:
			d.after(f.At, func() {
				for _, p := range f.Pods {
					d.signal(p, "KILL")
				}
			})
		case FaultSlowPod:
			d.after(f.At, func() { d.dutyCycle(f) })
		case FaultArtifactCorrupt:
			if d.bucket == nil {
				logEvent().Warn("artifact fault skipped: no bucket attached", "key", f.Artifact)
				continue
			}
			d.after(f.At, func() {
				if err := CorruptArtifact(d.bucket, f.Artifact, f.Mode, d.scenario.Seed); err != nil {
					logEvent().Warn("artifact corruption failed", "key", f.Artifact, "mode", f.Mode, "err", err)
				}
			})
		}
	}
}

// Stop cancels pending faults and blocks until every in-flight fault
// goroutine has finished — including each duty-cycler's final SIGCONT, so
// no pod is left frozen.
func (d *ProcDriver) Stop() {
	d.mu.Lock()
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	d.mu.Unlock()
	d.wg.Wait()
}

// after runs fn once delay has elapsed, unless stopped first.
func (d *ProcDriver) after(delay time.Duration, fn func()) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
			fn()
		case <-d.stop:
		}
	}()
}

func (d *ProcDriver) signal(replica int, sig string) {
	if err := d.target.SignalPod(replica, sig); err != nil {
		logEvent().Warn("chaos signal failed", "replica", replica, "signal", sig, "err", err)
	}
}

// dutyCycle throttles one pod to ~1/Factor of wall time by alternating
// SIGSTOP and SIGCONT: each slowPodPeriod the pod is stopped for
// (1 − 1/Factor) of the period and runnable for the rest. Runs for the
// fault's Duration (forever if ≤ 0) or until Stop; either way the last
// signal delivered is a SIGCONT.
func (d *ProcDriver) dutyCycle(f Fault) {
	stopFrac := 1 - 1/f.Factor
	if stopFrac <= 0 {
		return // Factor ≤ 1 slows nothing
	}
	stopped := time.Duration(float64(slowPodPeriod) * stopFrac)
	running := slowPodPeriod - stopped

	// The final CONT is unconditional: if Stop raced us mid-STOP the pod
	// must still be thawed.
	defer d.signal(f.Pod, "CONT")

	var end <-chan time.Time
	if f.Duration > 0 {
		t := time.NewTimer(f.Duration)
		defer t.Stop()
		end = t.C
	}
	pause := func(dur time.Duration) bool {
		t := time.NewTimer(dur)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-end:
			return false
		case <-d.stop:
			return false
		}
	}
	for {
		d.signal(f.Pod, "STOP")
		if !pause(stopped) {
			return
		}
		d.signal(f.Pod, "CONT")
		if running > 0 && !pause(running) {
			return
		}
	}
}
