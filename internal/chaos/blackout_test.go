package chaos_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"etude/internal/chaos"
	"etude/internal/cluster"
	"etude/internal/device"
	"etude/internal/httpapi"
	"etude/internal/leakcheck"
	"etude/internal/model"
	"etude/internal/shard"
	"etude/internal/sim"
)

// runBlackoutArm drives one arm of the shard-blackout experiment: a 4-shard,
// 2-replica simulated fleet where every replica of shard group 1 dies at
// mid-run and never restarts. Outcomes are indexed by request number so the
// pre/post-blackout phases can be judged separately.
func runBlackoutArm(t *testing.T, sc *chaos.Scenario, pol shard.Policy) ([]sim.Outcome, *shard.SimFleet) {
	t.Helper()
	eng := sim.NewEngine()
	f, err := shard.NewSimFleet(eng, shard.SimConfig{
		Device:   device.CPU(),
		Model:    "gru4rec",
		ModelCfg: model.Config{CatalogSize: 1_000_000},
		Shards:   4,
		Replicas: 2,
		Policy:   pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc != nil {
		if err := chaos.NewInjector(*sc).Arm(eng, f.Instances()); err != nil {
			t.Fatal(err)
		}
	}
	const n, gap = 300, 80 * time.Millisecond
	outs := make([]sim.Outcome, n)
	fired := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(time.Duration(i)*gap, func() {
			f.Submit(40, func(o sim.Outcome) {
				outs[i] = o
				fired[i] = true
			})
		})
	}
	eng.Drain()
	for i, ok := range fired {
		if !ok {
			t.Fatalf("request %d never completed", i)
		}
	}
	return outs, f
}

// The tentpole's availability claim, on the deterministic substrate: with
// one of four shard groups blacked out, the fail-fast arm's availability
// collapses to zero while the partial arm keeps answering every request at
// 3/4 coverage.
func TestShardBlackoutPartialArmSurvives(t *testing.T) {
	const n, gap = 300, 80 * time.Millisecond
	// Mid-gap placement: the boundary request is either cleanly before or
	// cleanly after the outage, and a small index margin absorbs the one
	// request whose scatter can be in flight on the dying group.
	at := 150*gap + gap/2
	sc := chaos.ShardBlackout(1, 2, at) // pods 2,3: both replicas of group 1
	if err := sc.Validate(8); err != nil {
		t.Fatal(err)
	}
	const pre, post = 148, 152

	ff, _ := runBlackoutArm(t, &sc, shard.Policy{Mode: shard.PolicyFailFast})
	pa, pf := runBlackoutArm(t, &sc, shard.Policy{Mode: shard.PolicyPartial, MinCoverage: 0.5})

	// Pre-blackout both arms are healthy and at full coverage.
	for i := 0; i < pre; i++ {
		if ff[i].Err != nil {
			t.Fatalf("fail-fast request %d failed pre-blackout: %v", i, ff[i].Err)
		}
		if pa[i].Err != nil || pa[i].Partial || pa[i].Coverage != 1 {
			t.Fatalf("partial-arm request %d pre-blackout = %+v, want full coverage", i, pa[i])
		}
	}
	// Post-blackout: fail-fast availability is ~0 — every request fans out
	// to the dead group.
	ffOK := 0
	for i := post; i < n; i++ {
		if ff[i].Err == nil {
			ffOK++
		}
	}
	if ffOK != 0 {
		t.Fatalf("fail-fast arm served %d/%d requests with a shard group down, want 0", ffOK, n-post)
	}
	// Post-blackout: the partial arm answers everything at 3/4 coverage.
	paOK := 0
	for i := post; i < n; i++ {
		if pa[i].Err != nil {
			continue
		}
		paOK++
		if !pa[i].Partial || pa[i].Coverage != 0.75 {
			t.Fatalf("partial-arm request %d post-blackout = %+v, want partial at coverage 0.75", i, pa[i])
		}
	}
	if avail := float64(paOK) / float64(n-post); avail < 0.99 {
		t.Fatalf("partial-arm post-blackout availability = %.4f, want >= 0.99", avail)
	}
	ps := pf.PartialStats()
	if ps.Partial() == 0 || ps.FloorFailures() != 0 {
		t.Fatalf("partial counters = partial %d / floor failures %d, want >0 / 0", ps.Partial(), ps.FloorFailures())
	}
	if ps.LastCoverage() != 0.75 {
		t.Fatalf("LastCoverage() = %v, want 0.75", ps.LastCoverage())
	}
}

// Below the floor even the partial arm must fail — losing 3 of 4 groups
// under a 0.5 coverage floor is an outage, not a degradation.
func TestShardBlackoutSimCoverageFloor(t *testing.T) {
	sc := chaos.Scenario{Name: "triple-blackout", Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.FaultAZOutage, At: 0, Pods: []int{2, 3, 4, 5, 6, 7}},
	}}
	if err := sc.Validate(8); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f, err := shard.NewSimFleet(eng, shard.SimConfig{
		Device:   device.CPU(),
		Model:    "gru4rec",
		ModelCfg: model.Config{CatalogSize: 1_000_000},
		Shards:   4,
		Replicas: 2,
		Policy:   shard.Policy{Mode: shard.PolicyPartial, MinCoverage: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := chaos.NewInjector(sc).Arm(eng, f.Instances()); err != nil {
		t.Fatal(err)
	}
	const n = 5
	failures := 0
	for i := 0; i < n; i++ {
		eng.Schedule(time.Duration(i)*80*time.Millisecond, func() {
			f.Submit(40, func(o sim.Outcome) {
				var ce *shard.CoverageError
				if !errors.As(o.Err, &ce) {
					t.Errorf("outcome err = %v, want a CoverageError", o.Err)
					return
				}
				if ce.Answered != 1 || ce.Min != 2 {
					t.Errorf("CoverageError = %+v, want 1 answered of floor 2", ce)
				}
				failures++
			})
		})
	}
	eng.Drain()
	if failures != n {
		t.Fatalf("floor failures = %d, want %d", failures, n)
	}
	if got := f.PartialStats().FloorFailures(); got != n {
		t.Fatalf("FloorFailures() = %d, want %d", got, n)
	}
}

func TestShardBlackoutScenarioShape(t *testing.T) {
	sc := chaos.ShardBlackout(1, 2, 5*time.Second)
	if sc.Name != "shard-blackout" || len(sc.Faults) != 1 {
		t.Fatalf("unexpected scenario %+v", sc)
	}
	f := sc.Faults[0]
	if f.Kind != chaos.FaultAZOutage || f.At != 5*time.Second || f.Duration != 0 {
		t.Fatalf("unexpected fault %+v", f)
	}
	if len(f.Pods) != 2 || f.Pods[0] != 2 || f.Pods[1] != 3 {
		t.Fatalf("pods = %v, want [2 3] (group 1 of a 2-replica fleet)", f.Pods)
	}
	if err := sc.Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(3); err == nil {
		t.Fatal("pod 3 must be rejected for a 3-pod fleet")
	}
}

// procSignalTarget adapts a ProcRunner pod set to the driver's SignalTarget:
// replica ordinal i is runner pod ids[i].
type procSignalTarget struct {
	r   *cluster.ProcRunner
	ids []int
}

func (p *procSignalTarget) SignalPod(replica int, sig string) error {
	if replica < 0 || replica >= len(p.ids) {
		return nil
	}
	return p.r.Signal(p.ids[replica], sig)
}

// The same blackout against real operating-system processes: four partition
// pods behind two gateway fronts, SIGKILL delivered to shard group 1 by the
// ProcDriver. The fail-fast front goes dark; the partial front keeps
// serving 200s stamped X-Degraded: partial / X-Coverage: 0.7500.
func TestShardBlackoutProcFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("process tests skipped in -short mode")
	}
	bin, err := cluster.ServerBinary()
	if err != nil {
		t.Fatalf("no etude-server binary: %v", err)
	}
	leakcheck.Check(t)
	leakcheck.NoChildProcs(t, "etude-server")

	r := cluster.NewProcRunner()
	defer r.Close()

	parts, err := shard.Plan(2_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(parts))
	urls := make([]string, len(parts))
	for i, part := range parts {
		st, err := r.Spawn(cluster.ProcSpec{Bin: bin, Args: []string{
			"-model", "gru4rec", "-catalog", "2000", "-seed", "3",
			"-partition", fmt.Sprintf("%d:%d:%d", part.Index, part.From, part.To),
			"-drain-timeout", "2s", "-drain-settle", "10ms",
		}})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		urls[i] = "http://" + st.Addr
	}
	for _, id := range ids {
		if !waitReady(r, id, 30*time.Second) {
			t.Fatalf("partition pod %d never became ready", id)
		}
	}

	groups := fmt.Sprintf("%s;%s;%s;%s", urls[0], urls[1], urls[2], urls[3])
	spawnGateway := func(extra ...string) string {
		t.Helper()
		args := append([]string{"-gateway", groups, "-drain-timeout", "2s", "-drain-settle", "10ms"}, extra...)
		st, err := r.Spawn(cluster.ProcSpec{Bin: bin, Args: args})
		if err != nil {
			t.Fatal(err)
		}
		if !waitReady(r, st.ID, 30*time.Second) {
			t.Fatalf("gateway pod %d never became ready", st.ID)
		}
		return "http://" + st.Addr
	}
	failFast := spawnGateway()
	partial := spawnGateway("-partial", "-min-coverage", "0.5")

	// Healthy baseline: both fronts answer 200 at full coverage.
	for _, front := range []string{failFast, partial} {
		resp := postPredict(t, front)
		if resp.status != http.StatusOK || resp.degraded != "" {
			t.Fatalf("healthy front %s answered %d (degraded %q), want clean 200", front, resp.status, resp.degraded)
		}
	}

	// SIGKILL shard group 1 through the scenario-driven proc driver.
	sc := chaos.ShardBlackout(1, 1, 0)
	d := chaos.NewProcDriver(sc, &procSignalTarget{r: r, ids: ids})
	d.Start()
	defer d.Stop()
	if _, exited := r.WaitExit(ids[1], 10*time.Second); !exited {
		t.Fatal("shard 1's pod survived the SIGKILL")
	}

	const n = 20
	ffOK, paOK := 0, 0
	for i := 0; i < n; i++ {
		if resp := postPredict(t, failFast); resp.status == http.StatusOK {
			ffOK++
		}
		resp := postPredict(t, partial)
		if resp.status != http.StatusOK {
			continue
		}
		paOK++
		if resp.degraded != httpapi.DegradedPartial {
			t.Fatalf("partial front served 200 without X-Degraded: partial (got %q)", resp.degraded)
		}
		if cov, ok := httpapi.Coverage(resp.header); !ok || cov != 0.75 {
			t.Fatalf("partial front X-Coverage = %v (ok=%v), want 0.75", cov, ok)
		}
		if len(resp.items) == 0 {
			t.Fatal("partial front answered with no recommendations")
		}
	}
	if ffOK != 0 {
		t.Fatalf("fail-fast front served %d/%d requests with a shard group dead, want 0", ffOK, n)
	}
	if paOK != n {
		t.Fatalf("partial front availability = %d/%d, want %d/%d", paOK, n, n, n)
	}
}

func waitReady(r *cluster.ProcRunner, id int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		st, err := r.Status(id)
		if err != nil {
			return false
		}
		if st.State == cluster.ProcReady {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type predictResult struct {
	status   int
	degraded string
	header   http.Header
	items    []int64
}

func postPredict(t *testing.T, base string) predictResult {
	t.Helper()
	body, _ := json.Marshal(httpapi.PredictRequest{SessionID: 1, Items: []int64{7, 900, 1500}})
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(base+httpapi.PredictPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", base, err)
	}
	defer resp.Body.Close()
	out := predictResult{status: resp.StatusCode, degraded: resp.Header.Get(httpapi.HeaderDegraded), header: resp.Header}
	if resp.StatusCode == http.StatusOK {
		var pr httpapi.PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		out.items = pr.Items
	}
	return out
}
