package chaos

import (
	"fmt"
)

// This file injects storage-plane faults: damaging release artifacts in the
// shared object-store bucket. Pod faults differ per substrate (middleware
// 503s in-process, POSIX signals for real processes); artifact faults do
// not — both substrates read the same bucket, so one corruption primitive
// serves the simulated engine (Injector.Arm), the live wall-clock driver
// (ProcDriver) and direct use by experiments.

// Artifact corruption modes.
const (
	// CorruptBitflip flips one bit of the object — silent media or transfer
	// corruption. Length and key survive; only the checksum can tell.
	CorruptBitflip = "bitflip"
	// CorruptTruncate cuts the object to half its length — a copy or upload
	// that stopped early but still committed.
	CorruptTruncate = "truncate"
	// CorruptTorn deletes the object outright — a publish that died between
	// writing the manifest and the artifact it promises.
	CorruptTorn = "torn"
)

// ValidCorruptMode reports whether mode names a known corruption mode.
func ValidCorruptMode(mode string) bool {
	switch mode {
	case CorruptBitflip, CorruptTruncate, CorruptTorn:
		return true
	}
	return false
}

// BucketTarget is the slice of an object-store bucket corruption needs.
// objstore.Bucket satisfies it; the narrow interface keeps this package
// decoupled from internal/objstore the same way SignalTarget decouples it
// from internal/cluster.
type BucketTarget interface {
	Get(key string) ([]byte, error)
	Put(key string, data []byte) error
	Delete(key string) error
}

// CorruptArtifact damages the object at key in the given mode. The damage
// is deterministic in seed (bitflip picks its byte and bit from it), so a
// seeded scenario replays the identical corruption. Torn mode tolerates a
// missing object — deleting what a torn publish never wrote is a no-op —
// while bitflip and truncate need bytes to damage and fail without them.
func CorruptArtifact(b BucketTarget, key, mode string, seed int64) error {
	switch mode {
	case CorruptTorn:
		return b.Delete(key)
	case CorruptBitflip, CorruptTruncate:
	default:
		return fmt.Errorf("chaos: unknown corruption mode %q", mode)
	}
	blob, err := b.Get(key)
	if err != nil {
		return fmt.Errorf("chaos: corrupting %s: %w", key, err)
	}
	if len(blob) == 0 {
		return fmt.Errorf("chaos: corrupting %s: object is empty", key)
	}
	if seed < 0 {
		seed = -seed
	}
	switch mode {
	case CorruptBitflip:
		blob[seed%int64(len(blob))] ^= 1 << (seed % 8)
	case CorruptTruncate:
		blob = blob[:len(blob)/2]
	}
	return b.Put(key, blob)
}
