package chaos

import (
	"sync"
	"testing"
	"time"
)

// fakeTarget records every signal the driver delivers.
type fakeTarget struct {
	mu      sync.Mutex
	signals []struct {
		Replica int
		Sig     string
	}
}

func (t *fakeTarget) SignalPod(replica int, sig string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.signals = append(t.signals, struct {
		Replica int
		Sig     string
	}{replica, sig})
	return nil
}

func (t *fakeTarget) count(replica int, sig string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.signals {
		if s.Replica == replica && s.Sig == sig {
			n++
		}
	}
	return n
}

func (t *fakeTarget) last(replica int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := ""
	for _, s := range t.signals {
		if s.Replica == replica {
			out = s.Sig
		}
	}
	return out
}

func TestProcDriverCrashBecomesKill(t *testing.T) {
	target := &fakeTarget{}
	d := NewProcDriver(Scenario{Name: "crash", Faults: []Fault{
		{Kind: FaultPodCrash, At: 5 * time.Millisecond, Pod: 2},
		{Kind: FaultAZOutage, At: 5 * time.Millisecond, Pods: []int{0, 1}},
	}}, target)
	d.Start()
	defer d.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if target.count(2, "KILL") == 1 && target.count(0, "KILL") == 1 && target.count(1, "KILL") == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("expected one KILL per targeted pod, got %+v", target.signals)
}

func TestProcDriverSlowPodDutyCycle(t *testing.T) {
	target := &fakeTarget{}
	d := NewProcDriver(Scenario{Name: "slow", Faults: []Fault{
		{Kind: FaultSlowPod, At: 0, Duration: 500 * time.Millisecond, Pod: 1, Factor: 4},
	}}, target)
	d.Start()

	// Several 40ms duty cycles fit in the window.
	time.Sleep(200 * time.Millisecond)
	d.Stop()

	if got := target.count(1, "STOP"); got < 2 {
		t.Fatalf("expected at least 2 STOPs during duty-cycling, got %d", got)
	}
	if got := target.last(1); got != "CONT" {
		t.Fatalf("pod must be thawed after Stop: last signal = %q, want CONT", got)
	}
	if got := target.count(1, "KILL"); got != 0 {
		t.Fatalf("slow-pod fault must not kill, got %d KILLs", got)
	}
}

func TestProcDriverStopCancelsPendingFaults(t *testing.T) {
	target := &fakeTarget{}
	d := NewProcDriver(Scenario{Name: "late", Faults: []Fault{
		{Kind: FaultPodCrash, At: 10 * time.Second, Pod: 0},
	}}, target)
	d.Start()
	d.Stop()
	if got := target.count(0, "KILL"); got != 0 {
		t.Fatalf("cancelled fault must not fire, got %d KILLs", got)
	}
}

func TestProcDriverIgnoresClientSideFaults(t *testing.T) {
	target := &fakeTarget{}
	d := NewProcDriver(Scenario{Name: "net", Faults: []Fault{
		{Kind: FaultNetworkDelay, At: 0, Duration: time.Millisecond, Delay: time.Millisecond},
		{Kind: FaultNetworkDrop, At: 0, Duration: time.Millisecond, Prob: 0.5},
		{Kind: FaultLoadSpike, At: 0, Duration: time.Millisecond, Factor: 2},
	}}, target)
	d.Start()
	time.Sleep(20 * time.Millisecond)
	d.Stop()
	target.mu.Lock()
	defer target.mu.Unlock()
	if len(target.signals) != 0 {
		t.Fatalf("network/load faults must not reach the fleet, got %+v", target.signals)
	}
}

// Factor ≤ 1 means "not slower": the duty-cycler must not freeze the pod.
func TestProcDriverSlowPodFactorOne(t *testing.T) {
	target := &fakeTarget{}
	d := NewProcDriver(Scenario{Name: "noop", Faults: []Fault{
		{Kind: FaultSlowPod, At: 0, Duration: 100 * time.Millisecond, Pod: 0, Factor: 1},
	}}, target)
	d.Start()
	time.Sleep(50 * time.Millisecond)
	d.Stop()
	if got := target.count(0, "STOP"); got != 0 {
		t.Fatalf("factor 1 must not STOP the pod, got %d", got)
	}
}
