package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"etude/internal/metrics"
	"etude/internal/powerlaw"
	"etude/internal/sim"
)

// RetryPolicy configures client-side retries in the resilient runner.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per logical request, including the
	// first (1 = no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt (exponential backoff) up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Budget is the retry budget: at most Budget retries are spent per
	// original request, fleet-wide (a token bucket earning Budget tokens
	// per send). Prevents retry storms from amplifying an outage.
	Budget float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.Budget <= 0 {
		p.Budget = 0.2
	}
	return p
}

// backoff returns the pre-jitter delay before retry number `retry` (1-based).
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// BreakerPolicy configures the per-pod circuit breaker used for
// health-aware balancing.
type BreakerPolicy struct {
	// FailThreshold is the consecutive-failure count that opens the
	// breaker.
	FailThreshold int
	// Cooldown is how long an open breaker ejects the pod before the next
	// request is allowed through as a probe (half-open).
	Cooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.FailThreshold <= 0 {
		p.FailThreshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * time.Second
	}
	return p
}

// breaker is a per-pod circuit breaker over virtual time.
type breaker struct {
	policy    BreakerPolicy
	fails     int
	openUntil time.Duration
	// half marks the half-open state: the breaker tripped and cooled down,
	// and the next request through is the probe — one failure reopens
	// immediately, no fresh threshold's worth of victims.
	half bool
}

func (b *breaker) allows(now time.Duration) bool { return now >= b.openUntil }

func (b *breaker) success() { b.fails = 0; b.half = false }

func (b *breaker) failure(now time.Duration) {
	b.fails++
	if b.half || b.fails >= b.policy.FailThreshold {
		b.openUntil = now + b.policy.Cooldown
		b.fails = 0
		b.half = true
	}
}

// SimConfig describes one resilient simulated benchmark run. It mirrors
// sim.LoadConfig plus the resilience knobs the faults exercise.
type SimConfig struct {
	// TargetRate is r: requests/second reached at the end of the ramp.
	TargetRate float64
	// Duration is d: total run length in virtual time.
	Duration time.Duration
	// Timeout is the client deadline: responses slower than this count as
	// timeout errors.
	Timeout time.Duration
	// NoRamp offers the target rate from the first tick.
	NoRamp bool
	// AlphaLength is the session-length power-law exponent.
	AlphaLength float64
	// MaxSessionLen caps sampled lengths.
	MaxSessionLen int
	// Seed drives session-length sampling and retry jitter.
	Seed int64
	// Retry configures client-side retries.
	Retry RetryPolicy
	// Breaker configures per-pod circuit breaking.
	Breaker BreakerPolicy
	// ProbeInterval is the readiness-probe period: the balancer's view of
	// which pods are up refreshes this often (default 1s), so crash
	// detection and restart re-admission both lag by up to one period —
	// the kubelet-probe delay a real cluster pays.
	ProbeInterval time.Duration
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.AlphaLength == 0 {
		c.AlphaLength = 2.2
	}
	if c.MaxSessionLen == 0 {
		c.MaxSessionLen = 50
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	c.Retry = c.Retry.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	return c
}

// SimResult summarises a resilient simulated run.
type SimResult struct {
	// Recorder holds latencies, errors by kind, degraded counts and retry
	// counts.
	Recorder *metrics.Recorder
	// Sent counts logical requests issued (retries excluded).
	Sent int64
	// Planned counts the requests the ramp schedule wanted to issue.
	Planned int64
	// Backpressured counts scheduling slots skipped under backpressure.
	Backpressured int64
	// NoBackend counts attempts that found every pod ejected (down or
	// breaker-open) — shed client-side without touching the network.
	NoBackend int64
}

// ErrorRate is failed / issued requests (0 for an empty run).
func (r *SimResult) ErrorRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Recorder.Errors()) / float64(r.Sent)
}

// DegradedRate is the fraction of issued requests answered by the fallback
// responder.
func (r *SimResult) DegradedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Recorder.Outcomes().Degraded) / float64(r.Sent)
}

// RunSim executes Algorithm 2's schedule in virtual time against the fleet
// with the full resilience stack, under the injector's fault scenario:
//
//   - routing skips pods that are down (readiness ejection) or whose
//     breaker is open, round-robin over the survivors;
//   - refused attempts (pod down, queue shed, no backend) and network drops
//     retry with exponential backoff + seeded jitter while the retry budget
//     lasts, and are recorded per kind — retried traffic never inflates Sent;
//   - responses slower than Timeout count as timeout errors; degraded
//     (fallback) responses count as successes but are reported separately.
//
// Pass a nil injector (or one with an empty scenario) for a fault-free
// control run. All instances must be registered on eng, and the caller
// configures per-instance sim.Resilience before calling.
func RunSim(eng *sim.Engine, cfg SimConfig, fleet []*sim.Instance, inj *Injector) (*SimResult, error) {
	cfg = cfg.withDefaults()
	if cfg.TargetRate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("chaos: rate and duration must be positive: %+v", cfg)
	}
	if len(fleet) == 0 {
		return nil, fmt.Errorf("chaos: empty fleet")
	}
	for _, in := range fleet {
		if !in.Fits() {
			return nil, fmt.Errorf("chaos: model does not fit an instance")
		}
	}
	if inj == nil {
		inj = NewInjector(Scenario{Name: "baseline"})
	}
	if err := inj.Arm(eng, fleet); err != nil {
		return nil, err
	}

	lengths, err := powerlaw.New(cfg.AlphaLength, 1)
	if err != nil {
		return nil, fmt.Errorf("chaos: session length distribution: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := &SimResult{Recorder: metrics.NewRecorder()}
	breakers := make([]*breaker, len(fleet))
	for i := range breakers {
		breakers[i] = &breaker{policy: cfg.Breaker}
	}
	pending := 0
	next := 0     // round-robin index
	budget := 0.0 // retry tokens
	start := eng.Now()

	// routable is the balancer's probe-delayed view of pod health: the
	// client does not learn of a crash (or a restart) until the next
	// readiness probe fires, so freshly dead pods still receive traffic —
	// that window is what the circuit breaker and retries must cover.
	routable := make([]bool, len(fleet))
	for i := range routable {
		routable[i] = fleet[i].Up()
	}
	var probe func()
	probe = func() {
		for i := range fleet {
			routable[i] = fleet[i].Up()
		}
		if eng.Now()-start < cfg.Duration {
			eng.Schedule(cfg.ProbeInterval, probe)
		}
	}
	// Third-interval phase offset: kubelet probe cycles are not
	// synchronised with failures, so a fault must not land exactly on a
	// probe tick and be detected for free. A third (333ms at the default
	// 1s period) cannot coincide with the catalog's fault times, which sit
	// on a coarser decimal grid.
	eng.Schedule(cfg.ProbeInterval/3, probe)

	// pick returns the next routable pod index, or -1 when every pod is
	// ejected (probe-down or breaker-open).
	pick := func() int {
		now := eng.Now()
		for i := 0; i < len(fleet); i++ {
			idx := next % len(fleet)
			next++
			if routable[idx] && breakers[idx].allows(now) {
				return idx
			}
		}
		return -1
	}

	// finish records the terminal outcome of one logical request.
	finish := func(tick int, firstStart time.Duration, o sim.Outcome, kind metrics.ErrorKind, failed bool) {
		pending--
		total := eng.Now() - firstStart
		switch {
		case failed:
			res.Recorder.RecordErrorKind(tick, kind)
			res.Recorder.RecordStatus(tick, 503)
		case total > cfg.Timeout:
			res.Recorder.RecordErrorKind(tick, metrics.KindTimeout)
		case o.Degraded:
			res.Recorder.RecordDegraded(tick, total)
			res.Recorder.RecordStatus(tick, 200)
		default:
			res.Recorder.RecordLatency(tick, total)
			res.Recorder.RecordStatus(tick, 200)
		}
	}

	// attempt issues try number `try` (1-based) of one logical request.
	var attempt func(tick, sessionLen, try int, firstStart time.Duration)
	attempt = func(tick, sessionLen, try int, firstStart time.Duration) {
		now := eng.Now()
		// A client past its deadline has hung up; whatever happens next is
		// a timeout regardless of how this attempt would have fared.
		if now-firstStart > cfg.Timeout {
			finish(tick, firstStart, sim.Outcome{}, metrics.KindTimeout, true)
			return
		}
		fail := func(kind metrics.ErrorKind) {
			// Retry refused/dropped attempts with backoff + jitter while
			// attempts and budget remain.
			if try < cfg.Retry.MaxAttempts && budget >= 1 {
				budget--
				res.Recorder.RecordRetry(tick)
				delay := cfg.Retry.backoff(try)
				jitter := time.Duration(rng.Int63n(int64(delay)/2 + 1))
				eng.Schedule(delay+jitter, func() {
					attempt(tick, sessionLen, try+1, firstStart)
				})
				return
			}
			finish(tick, firstStart, sim.Outcome{}, kind, true)
		}

		netDelay, drop := inj.NetworkFault(now)
		if drop {
			// The request vanished; the client notices at its deadline.
			eng.Schedule(cfg.Timeout, func() { fail(metrics.KindTimeout) })
			return
		}
		idx := pick()
		if idx < 0 {
			res.NoBackend++
			fail(metrics.KindRefused)
			return
		}
		in, br := fleet[idx], breakers[idx]
		eng.Schedule(netDelay, func() {
			in.SubmitOutcome(sessionLen, func(o sim.Outcome) {
				switch {
				case o.Err == nil:
					br.success()
					finish(tick, firstStart, o, 0, false)
				case errors.Is(o.Err, sim.ErrDeadlineExpired):
					// The budget died in the pod's queue: the server answered
					// 504 and there is nothing left to retry with. Not a
					// breaker failure — the pod is overloaded, not dead.
					pending--
					res.Recorder.RecordErrorKind(tick, metrics.KindTimeout)
					res.Recorder.RecordStatus(tick, 504)
				case errors.Is(o.Err, sim.ErrCoDelDropped), errors.Is(o.Err, sim.ErrLimited):
					// Flow-control refusals (the server's 503/429 +
					// Retry-After): retryable, but deliberately not breaker
					// failures — tripping breakers on shed load would eject a
					// healthy-but-busy fleet wholesale and turn overload into
					// an outage.
					fail(metrics.KindRefused)
				default:
					br.failure(eng.Now())
					fail(metrics.KindRefused)
				}
			})
		})
	}

	ticks := int(cfg.Duration / time.Second)
	if ticks < 1 {
		ticks = 1
	}
	for t := 0; t < ticks; t++ {
		tick := t
		frac := float64(t+1) / float64(ticks)
		if cfg.NoRamp {
			frac = 1
		}
		// Load-spike faults multiply the demand side: the factor is known at
		// schedule-layout time, so the spiked ticks are laid out exactly.
		rc := int(cfg.TargetRate * frac * inj.LoadFactor(time.Duration(t)*time.Second))
		if rc < 1 {
			rc = 1
		}
		res.Planned += int64(rc)
		gap := time.Second / time.Duration(rc)
		for i := 0; i < rc; i++ {
			at := start + time.Duration(tick)*time.Second + time.Duration(i)*gap
			sessionLen := lengths.SampleIntCapped(rng, cfg.MaxSessionLen)
			eng.Schedule(at-eng.Now(), func() {
				// Backpressure: skip the slot when the fleet already has a
				// tick's worth of work outstanding.
				if pending >= rc {
					res.Backpressured++
					return
				}
				pending++
				res.Sent++
				budget += cfg.Retry.Budget
				res.Recorder.RecordSent(tick)
				attempt(tick, sessionLen, 1, eng.Now())
			})
		}
	}
	eng.Run(start + cfg.Duration)
	eng.Drain()
	return res, nil
}
