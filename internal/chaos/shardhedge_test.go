package chaos_test

import (
	"sort"
	"testing"
	"time"

	"etude/internal/chaos"
	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/shard"
	"etude/internal/sim"
)

// runShardArm drives one arm of the slow-shard experiment: a 4-shard,
// 2-replica simulated fleet under a large catalog, with one shard worker
// optionally slowed 10× for the whole run. Arrivals are spaced far enough
// apart that queueing never builds up, so the latency distribution isolates
// the straggler effect hedging is meant to absorb.
func runShardArm(t *testing.T, sc *chaos.Scenario, hedge bool) ([]time.Duration, *shard.SimFleet) {
	t.Helper()
	eng := sim.NewEngine()
	f, err := shard.NewSimFleet(eng, shard.SimConfig{
		Device:   device.CPU(),
		Model:    "gru4rec",
		ModelCfg: model.Config{CatalogSize: 1_000_000},
		Shards:   4,
		Replicas: 2,
		Hedge:    shard.HedgeConfig{Enabled: hedge},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc != nil {
		if err := chaos.NewInjector(*sc).Arm(eng, f.Instances()); err != nil {
			t.Fatal(err)
		}
	}
	const n, gap = 300, 80 * time.Millisecond
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		eng.Schedule(time.Duration(i)*gap, func() {
			f.Submit(40, func(o sim.Outcome) {
				if o.Err != nil {
					t.Errorf("request failed: %v", o.Err)
					return
				}
				lats = append(lats, o.Latency)
			})
		})
	}
	eng.Drain()
	if len(lats) != n {
		t.Fatalf("completed %d/%d requests", len(lats), n)
	}
	return lats, f
}

func p99Of(lats []time.Duration) time.Duration {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(0.99*float64(len(s)-1))]
}

// The resilience claim of the scatter-gather tier: under a 10×-slow shard
// worker, hedging recovers p99 to within 2× of the fault-free run, while
// the unhedged fleet's p99 degrades well past that bound — every request
// fans out to all shards, so without a backup the slow worker holds half
// the traffic hostage for its full 10× service time.
func TestSlowShardHedgingRecoversP99(t *testing.T) {
	runLen := 300 * 80 * time.Millisecond
	sc := chaos.SlowShard(runLen, 0, 10) // shard 0, replica 0 in flat pod order
	if err := sc.Validate(8); err != nil {
		t.Fatal(err)
	}

	faultFree, _ := runShardArm(t, nil, false)
	unhedged, _ := runShardArm(t, &sc, false)
	hedged, hf := runShardArm(t, &sc, true)

	// The adaptive hedge timer needs ~2·MinSamples requests of winning
	// primaries before its p95 estimate replaces the conservative fallback
	// delay; compare steady state, after the warm-up window.
	const warm = 80
	ffP99, unP99, hP99 := p99Of(faultFree[warm:]), p99Of(unhedged[warm:]), p99Of(hedged[warm:])
	t.Logf("p99: fault-free=%v unhedged=%v hedged=%v (hedges sent=%d wins=%d cancelled=%d)",
		ffP99, unP99, hP99, hf.Stats().Sent(), hf.Stats().Wins(), hf.Stats().Cancelled())

	if hP99 > 2*ffP99 {
		t.Fatalf("hedged p99 %v exceeds 2× fault-free p99 %v", hP99, ffP99)
	}
	if unP99 <= 2*ffP99 {
		t.Fatalf("unhedged p99 %v did not degrade past 2× fault-free p99 %v — the fault is too mild to test recovery", unP99, ffP99)
	}
	if hP99 >= unP99 {
		t.Fatalf("hedged p99 %v not below unhedged p99 %v", hP99, unP99)
	}
	if hf.Stats().Sent() == 0 || hf.Stats().Wins() == 0 {
		t.Fatalf("hedging never engaged: sent=%d wins=%d", hf.Stats().Sent(), hf.Stats().Wins())
	}
}

func TestSlowShardScenarioShape(t *testing.T) {
	sc := chaos.SlowShard(time.Minute, 3, 10)
	if sc.Name != "slow-shard" || len(sc.Faults) != 1 {
		t.Fatalf("unexpected scenario %+v", sc)
	}
	f := sc.Faults[0]
	if f.Kind != chaos.FaultSlowPod || f.Pod != 3 || f.Factor != 10 || f.At != 0 || f.Duration != time.Minute {
		t.Fatalf("unexpected fault %+v", f)
	}
	if err := sc.Validate(2); err == nil {
		t.Fatal("pod 3 must be rejected for a 2-pod fleet")
	}
}
