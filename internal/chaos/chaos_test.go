package chaos

import (
	"testing"
	"time"

	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sim"
)

func newFleet(t *testing.T, eng *sim.Engine, n int) []*sim.Instance {
	t.Helper()
	fleet := make([]*sim.Instance, n)
	for i := range fleet {
		in, err := sim.NewInstance(eng, device.CPU(), "gru4rec",
			model.Config{CatalogSize: 10_000, Seed: 1},
			true, 2*time.Millisecond, device.CPU().MaxBatch)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		in.SetResilience(sim.Resilience{MaxQueue: 64, DegradeAt: 32})
		fleet[i] = in
	}
	return fleet
}

func TestCatalogValidates(t *testing.T) {
	for _, sc := range Catalog(60*time.Second, 4) {
		if err := sc.Validate(4); err != nil {
			t.Errorf("scenario %s: %v", sc.Name, err)
		}
	}
	// A crash aimed at a pod outside the fleet must be rejected.
	bad := Scenario{Name: "bad", Faults: []Fault{{Kind: FaultPodCrash, At: time.Second, Pod: 7}}}
	if err := bad.Validate(4); err == nil {
		t.Fatal("expected Validate to reject out-of-range pod")
	}
}

func runScenario(t *testing.T, sc Scenario) *SimResult {
	t.Helper()
	eng := sim.NewEngine()
	fleet := newFleet(t, eng, 4)
	out, err := RunSim(eng, SimConfig{
		TargetRate: 400,
		Duration:   30 * time.Second,
		Timeout:    time.Second,
		Seed:       1,
		Retry:      RetryPolicy{MaxAttempts: 3},
	}, fleet, NewInjector(sc))
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	return out
}

// TestRunSimDeterministic re-runs the same faulty scenario and demands
// identical outcomes — the property that makes chaos results reviewable.
func TestRunSimDeterministic(t *testing.T) {
	sc := Catalog(30*time.Second, 4)[3] // network-degraded: uses the RNG
	a, b := runScenario(t, sc), runScenario(t, sc)
	if a.Sent != b.Sent || a.Backpressured != b.Backpressured || a.NoBackend != b.NoBackend {
		t.Fatalf("counts diverged: %+v vs %+v", a, b)
	}
	if a.Recorder.Outcomes() != b.Recorder.Outcomes() {
		t.Fatalf("outcomes diverged:\n%v\n%v", a.Recorder.Outcomes(), b.Recorder.Outcomes())
	}
	if a.Recorder.Overall() != b.Recorder.Overall() {
		t.Fatalf("latency diverged:\n%+v\n%+v", a.Recorder.Overall(), b.Recorder.Overall())
	}
}

// TestPodCrashBoundedAndRecovers is the headline property: a crashed pod
// costs a bounded sliver of traffic while breakers and probes converge, and
// the tail of the run — after the restart — is clean.
func TestPodCrashBoundedAndRecovers(t *testing.T) {
	scs := Catalog(30*time.Second, 4)
	base, crash := runScenario(t, scs[0]), runScenario(t, scs[1])
	if crash.Sent != base.Sent {
		t.Fatalf("crash run sent %d, baseline %d", crash.Sent, base.Sent)
	}
	if rate := crash.ErrorRate(); rate > 0.02 {
		t.Fatalf("pod crash error rate %.4f exceeds 2%%", rate)
	}
	// The crash must actually be felt: requests routed into the dead pod
	// get refused and retried (or, at worst, surface as errors).
	felt := crash.Recorder.Outcomes().Retries + crash.Recorder.Errors()
	if felt == 0 {
		t.Fatal("pod crash was invisible: no retries and no errors")
	}
	// Recovery: the last fifth of the run (well past the restart) is clean.
	series := crash.Recorder.Series()
	for _, ts := range series[len(series)-len(series)/5:] {
		if ts.Errors != 0 {
			t.Fatalf("errors after recovery at tick %d: %d", ts.Tick, ts.Errors)
		}
	}
}

// TestAZOutageRefusesWithoutCollapse: with half the fleet down the
// survivors absorb the load; client-visible errors stay bounded.
func TestAZOutageRefusesWithoutCollapse(t *testing.T) {
	scs := Catalog(30*time.Second, 4)
	out := runScenario(t, scs[4])
	if rate := out.ErrorRate(); rate > 0.05 {
		t.Fatalf("az outage error rate %.4f exceeds 5%%", rate)
	}
	if out.Recorder.Outcomes().Retries == 0 && out.Recorder.Errors() == 0 {
		t.Fatal("az outage was invisible")
	}
}

func TestBreakerOpensAndHalfOpens(t *testing.T) {
	br := &breaker{policy: BreakerPolicy{FailThreshold: 3, Cooldown: time.Second}}
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		if !br.allows(now) {
			t.Fatalf("breaker opened after %d failures", i)
		}
		br.failure(now)
	}
	if br.allows(now) {
		t.Fatal("breaker still closed after threshold")
	}
	// After the cooldown one probe is allowed; its failure reopens
	// immediately instead of costing a fresh threshold's worth.
	now += time.Second
	if !br.allows(now) {
		t.Fatal("breaker not half-open after cooldown")
	}
	br.failure(now)
	if br.allows(now) {
		t.Fatal("failed half-open probe did not reopen the breaker")
	}
	// A successful probe closes it fully.
	now += time.Second
	br.success()
	br.failure(now)
	if !br.allows(now) {
		t.Fatal("single failure after recovery must not trip the breaker")
	}
}

func TestRetryBackoffProgression(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}.withDefaults()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestNetworkFaultWindows(t *testing.T) {
	sc := Scenario{Name: "net", Seed: 1, Faults: []Fault{
		{Kind: FaultNetworkDelay, At: 10 * time.Second, Duration: 10 * time.Second, Delay: 3 * time.Millisecond},
		{Kind: FaultNetworkDrop, At: 10 * time.Second, Duration: 10 * time.Second, Prob: 1},
	}}
	inj := NewInjector(sc)
	if d, drop := inj.NetworkFault(5 * time.Second); d != 0 || drop {
		t.Fatalf("fault active outside window: delay=%v drop=%v", d, drop)
	}
	if d, drop := inj.NetworkFault(15 * time.Second); d != 3*time.Millisecond || !drop {
		t.Fatalf("fault inactive inside window: delay=%v drop=%v", d, drop)
	}
	if d, drop := inj.NetworkFault(20 * time.Second); d != 0 || drop {
		t.Fatalf("window end is inclusive: delay=%v drop=%v", d, drop)
	}
}

func TestLoadFactorWindows(t *testing.T) {
	sc := Overload(60 * time.Second) // 3× spike during [12s, 48s)
	if err := sc.Validate(4); err != nil {
		t.Fatalf("Overload scenario invalid: %v", err)
	}
	inj := NewInjector(sc)
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{
		{5 * time.Second, 1},
		{12 * time.Second, 3},
		{30 * time.Second, 3},
		{48 * time.Second, 1},
	} {
		if got := inj.LoadFactor(tc.at); got != tc.want {
			t.Errorf("LoadFactor(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	bad := Scenario{Name: "bad", Faults: []Fault{{Kind: FaultLoadSpike, At: 0, Duration: time.Second}}}
	if err := bad.Validate(1); err == nil {
		t.Fatal("expected Validate to reject zero load factor")
	}
}

// TestLoadSpikeStressesSchedule: a load-spike scenario must lay out more
// requests than its fault-free twin — the spiked ticks are planned at the
// multiplied rate — and stay deterministic.
func TestLoadSpikeStressesSchedule(t *testing.T) {
	run := func(sc Scenario) *SimResult {
		eng := sim.NewEngine()
		fleet := newFleet(t, eng, 4)
		out, err := RunSim(eng, SimConfig{
			TargetRate: 100,
			Duration:   20 * time.Second,
			NoRamp:     true,
			Timeout:    time.Second,
			Seed:       1,
		}, fleet, NewInjector(sc))
		if err != nil {
			t.Fatalf("RunSim: %v", err)
		}
		return out
	}
	base := run(Scenario{Name: "baseline", Seed: 1})
	spike := run(Overload(20 * time.Second))
	// 20 ticks at 100/s, 12 of them tripled: 8·100 + 12·300 = 4400 planned.
	if want := int64(4400); spike.Planned != want {
		t.Fatalf("spiked run planned %d requests, want %d", spike.Planned, want)
	}
	if spike.Planned <= base.Planned {
		t.Fatalf("spike invisible: planned %d vs baseline %d", spike.Planned, base.Planned)
	}
	again := run(Overload(20 * time.Second))
	if spike.Sent != again.Sent || spike.Recorder.Outcomes() != again.Recorder.Outcomes() {
		t.Fatalf("load-spike run not deterministic")
	}
}

func TestPodDownWindows(t *testing.T) {
	sc := Catalog(60*time.Second, 4)[1] // pod-crash: pod 0 down 18s–30s
	inj := NewInjector(sc)
	if inj.PodDown(0, 17*time.Second) {
		t.Fatal("pod down before the crash")
	}
	if !inj.PodDown(0, 20*time.Second) {
		t.Fatal("pod up inside the crash window")
	}
	if inj.PodDown(1, 20*time.Second) {
		t.Fatal("wrong pod down")
	}
	if inj.PodDown(0, 31*time.Second) {
		t.Fatal("pod down after the restart")
	}
}
