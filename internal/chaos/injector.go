package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"etude/internal/sim"
)

// ErrDropped is the transport error surfaced for requests eaten by an
// injected network drop in live mode.
var ErrDropped = fmt.Errorf("chaos: request dropped by fault injection")

// Injector evaluates one scenario deterministically. It serves both
// substrates: Arm schedules the pod-lifecycle faults on a discrete-event
// engine, NetworkFault answers per-request network faults (used by the sim
// runner and by the live RoundTripper), PodDown gates the live middleware.
//
// The injector is safe for concurrent use in live mode; in simulation the
// engine's single-threaded event loop serialises access anyway.
type Injector struct {
	sc Scenario

	// bucket receives artifact-corruption faults (SetBucket). Nil when the
	// scenario has none.
	bucket BucketTarget

	mu  sync.Mutex
	rng *rand.Rand

	startOnce sync.Once
	start     time.Time
}

// NewInjector builds an injector for the scenario.
func NewInjector(sc Scenario) *Injector {
	return &Injector{sc: sc, rng: rand.New(rand.NewSource(sc.Seed))}
}

// Scenario returns the scenario the injector replays.
func (inj *Injector) Scenario() Scenario { return inj.sc }

// SetBucket attaches the object-store bucket artifact-corruption faults
// apply to. Arm rejects scenarios carrying FaultArtifactCorrupt until one
// is attached.
func (inj *Injector) SetBucket(b BucketTarget) { inj.bucket = b }

// Arm schedules every pod-lifecycle fault of the scenario on the engine
// against the fleet: crashes, restarts, slowdown windows and AZ outages.
// Network faults are not armed here — the benchmark runner consults
// NetworkFault per request. Call once, at virtual time zero.
func (inj *Injector) Arm(eng *sim.Engine, fleet []*sim.Instance) error {
	if err := inj.sc.Validate(len(fleet)); err != nil {
		return err
	}
	for _, f := range inj.sc.Faults {
		f := f
		switch f.Kind {
		case FaultPodCrash:
			pod := fleet[f.Pod]
			eng.Schedule(f.At, pod.Crash)
			if f.Duration > 0 {
				eng.Schedule(f.At+f.Duration, pod.Restart)
			}
		case FaultSlowPod:
			pod := fleet[f.Pod]
			eng.Schedule(f.At, func() { pod.SetSlowdown(f.Factor) })
			if f.Duration > 0 {
				eng.Schedule(f.At+f.Duration, func() { pod.SetSlowdown(1) })
			}
		case FaultAZOutage:
			for _, p := range f.Pods {
				pod := fleet[p]
				eng.Schedule(f.At, pod.Crash)
				if f.Duration > 0 {
					eng.Schedule(f.At+f.Duration, pod.Restart)
				}
			}
		case FaultNetworkDelay, FaultNetworkDrop, FaultLoadSpike:
			// Demand-side / per-request faults; evaluated lazily by
			// NetworkFault and LoadFactor.
		case FaultArtifactCorrupt:
			if inj.bucket == nil {
				return fmt.Errorf("chaos: scenario %q corrupts artifacts but no bucket is attached (SetBucket)", inj.sc.Name)
			}
			eng.Schedule(f.At, func() {
				if err := CorruptArtifact(inj.bucket, f.Artifact, f.Mode, inj.sc.Seed); err != nil {
					logEvent().Warn("artifact corruption failed", "key", f.Artifact, "mode", f.Mode, "err", err)
				}
			})
		}
	}
	return nil
}

// NetworkFault returns the network fault applied to one request issued at
// offset t: an added delay and whether the request is dropped outright.
// Drop decisions consume the scenario's seeded RNG, so the same seed replays
// the same drops.
func (inj *Injector) NetworkFault(t time.Duration) (delay time.Duration, drop bool) {
	for _, f := range inj.sc.Faults {
		if !f.active(t) {
			continue
		}
		switch f.Kind {
		case FaultNetworkDelay:
			delay += f.Delay
		case FaultNetworkDrop:
			inj.mu.Lock()
			if inj.rng.Float64() < f.Prob {
				drop = true
			}
			inj.mu.Unlock()
		}
	}
	return delay, drop
}

// LoadFactor returns the offered-load multiplier at offset t: the product
// of every active load-spike fault's Factor, 1 with none active. The load
// schedule multiplies each tick's request count by it.
func (inj *Injector) LoadFactor(t time.Duration) float64 {
	factor := 1.0
	for _, f := range inj.sc.Faults {
		if f.Kind == FaultLoadSpike && f.active(t) {
			factor *= f.Factor
		}
	}
	return factor
}

// PodDown reports whether the scenario has pod down at offset t (crash
// windows and AZ outages). A crash with Duration 0 never restarts.
func (inj *Injector) PodDown(pod int, t time.Duration) bool {
	for _, f := range inj.sc.Faults {
		switch f.Kind {
		case FaultPodCrash:
			if f.Pod == pod && f.active(t) {
				return true
			}
		case FaultAZOutage:
			for _, p := range f.Pods {
				if p == pod && f.active(t) {
					return true
				}
			}
		}
	}
	return false
}

// Start anchors the live-mode clock: fault offsets are measured from this
// moment. Without an explicit call, the clock starts at the injector's
// first live-mode use.
func (inj *Injector) Start() { inj.startOnce.Do(func() { inj.start = time.Now() }) }

func (inj *Injector) elapsed() time.Duration {
	inj.Start()
	return time.Since(inj.start)
}

// RoundTripper wraps base (nil: http.DefaultTransport) with client-side
// network-fault injection for live benchmarks: requests inside a delay
// window are held back before being sent, and dropped requests fail with
// ErrDropped (the client-observable shape of a reset connection).
func (inj *Injector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{inj: inj, base: base}
}

type faultTransport struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	delay, drop := t.inj.NetworkFault(t.inj.elapsed())
	if drop {
		return nil, ErrDropped
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	return t.base.RoundTrip(r)
}

// Middleware wraps a pod's handler with the scenario's crash windows: while
// the pod is down, every request (including readiness probes) answers 503,
// so health-aware balancers eject it exactly as they would a dead pod.
// Intended for cluster.PodSpec.Middleware.
func (inj *Injector) Middleware(pod int) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if inj.PodDown(pod, inj.elapsed()) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "chaos: pod down", http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
