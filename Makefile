# Mirrors the paper's automation entry points (`make infra`,
# `make run_deployed_benchmark`) on top of the Go toolchain.

BUCKET ?= ./etude-bucket
MODEL ?= gru4rec
CATALOG ?= 10000
RATE ?= 100
DURATION ?= 30s
EXPERIMENT ?= table1
SCALE ?= test
# Pod substrate for cluster experiments: inproc (goroutine HTTP servers)
# or proc (real etude-server processes behind the local control plane).
PODS ?= inproc

.PHONY: build test bench vet race check reproduce baseline gate infra run_deployed_benchmark benchmark profile advise clean

# Process tests exec a real etude-server; build it once here so every test
# package shares one binary instead of each invoking `go build`.
bin/etude-server: $(shell find cmd internal -name '*.go') go.mod
	go build -o bin/etude-server ./cmd/etude-server

# The bench harness runs from a built binary, not `go run`: only a real
# `go build` embeds the VCS stamp that buildinfo turns into the git SHA on
# every CSV and BENCH_*.json the harness writes.
bin/etude: $(shell find cmd internal -name '*.go') go.mod
	go build -o bin/etude ./cmd/etude

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

vet:
	go vet ./...

# Static analysis plus the full suite under the race detector — the gate
# for the concurrent resilience paths (admission control, retries,
# balancer ejection).
race:
	go vet ./...
	go test -race ./...

# The merge gate (also run by CI): build + vet + full suite, plus the race
# detector on the packages with real concurrency — the cluster lifecycle
# (drain/scale/rolling-update/supervisor, the process runner and control
# plane), the server's admission control, the load generator, the
# scatter-gather retrieval tier (goroutine fan-out, hedged sub-requests,
# partial top-k merge, the partial-result policy and its group breakers),
# the overload controllers (CoDel, AIMD limiter) hammered from many
# goroutines, and the chaos drivers including the shard-blackout scenario.
# Process tests (real SIGKILL blackouts included) use the prebuilt
# bin/etude-server; skip them with `go test -short`.
# The final step is the perf-regression gate: it re-runs the smoke grid
# (bench/smoke.json) and fails when any gated metric drifts beyond the
# noise band of the committed baselines in results/baselines/, naming the
# trace stage that moved with it.
check: bin/etude-server bin/etude
	go build ./...
	go vet ./...
	ETUDE_SERVER_BIN=$(CURDIR)/bin/etude-server go test ./...
	ETUDE_SERVER_BIN=$(CURDIR)/bin/etude-server go test -race ./internal/cluster ./internal/server ./internal/loadgen ./internal/trace ./internal/metrics ./internal/shard ./internal/topk ./internal/overload ./internal/chaos ./internal/leakcheck ./internal/sched ./internal/workload ./internal/deploy
	ETUDE_SERVER_BIN=$(CURDIR)/bin/etude-server bin/etude bench -grid bench/smoke.json

# One-command reproduction of the paper: run every experiment in
# bench/full.json three times (independent seeds) into a timestamped
# directory under results/runs/, schema-validating every CSV and
# aggregating the repeats into median+IQR BENCH_<experiment>.json
# summaries stamped with the build identity (git SHA, go version, host).
reproduce: bin/etude-server bin/etude
	ETUDE_SERVER_BIN=$(CURDIR)/bin/etude-server bin/etude bench -grid bench/full.json -no-gate

# Refresh the committed perf baselines from the smoke grid. Run this on an
# intentional perf change (or improvement) and commit the diff under
# results/baselines/ — the gate compares every future run against it.
baseline: bin/etude-server bin/etude
	ETUDE_SERVER_BIN=$(CURDIR)/bin/etude-server bin/etude bench -grid bench/smoke.json -update-baseline

# The perf-regression gate on its own (also the last step of `make check`).
gate: bin/etude-server bin/etude
	ETUDE_SERVER_BIN=$(CURDIR)/bin/etude-server bin/etude bench -grid bench/smoke.json

# One-time infrastructure provisioning (the paper's `make infra`): creates
# the local object-store bucket used for model artifacts and results.
infra:
	go run ./cmd/etude infra -bucket $(BUCKET)

# Deploy a model behind readiness probes and load test it (the paper's
# `make run_deployed_benchmark`). Results land in $(BUCKET)/results/.
run_deployed_benchmark:
	go run ./cmd/etude live -model $(MODEL) -catalog $(CATALOG) -rate $(RATE) \
		-duration $(DURATION) -bucket $(BUCKET)

# Regenerate a paper experiment:
#   make benchmark EXPERIMENT=fig2|fig3|fig4|table1|validation|issues|runtimes|autoscale|chaos|overload|rolling|deploy|breakdown|shard|blackout|tenant
# EXPERIMENT=chaos replays a fig4-style workload under each fault scenario
# (pod crash, slow node, degraded network, AZ outage) and reports
# p50/p99/error-rate/degraded-fraction per scenario, deterministically.
# EXPERIMENT=rolling drives sustained live load through a rolling model swap
# (drained vs. drainless) and a supervised pod crash, reporting error rate,
# p99, degraded fraction, forced kills and MTTR per phase.
# EXPERIMENT=breakdown traces every request through the serving path and
# prints the per-stage latency table (queue-wait, admission, batch-assembly,
# embedding-lookup, encoder-forward, mips-topk, serialize) per model and
# catalog size, reconciling the stage sum against the end-to-end latency.
# EXPERIMENT=overload replays a deterministic 3× load spike against one
# instance under three admission stacks — static bounded queue, + deadline
# budgets (expired work dropped at dequeue, before the encoder), + CoDel and
# the AIMD concurrency limiter — and reports goodput over the spike window,
# admitted p50/p99, and the drop counters per arm.
# EXPERIMENT=shard sweeps the catalog-sharded scatter-gather tier over
# S ∈ {1,2,4,8}: verifies the sharded top-k is bit-identical to unsharded,
# reports the p50 MIPS-latency speedup per shard count on large catalogs,
# compares p99 with/without tail-latency hedging under a 10×-slow shard,
# and prints the sharded deployment options from the cost model.
# EXPERIMENT=blackout kills every replica of one of S=4 shard groups mid-run
# (forever) and compares fail-fast vs partial-result serving: post-blackout
# availability (~0% vs ~100% at (S-1)/S coverage), the degraded-response and
# coverage accounting, and the measured recall@k loss of partial answers vs
# the full-coverage oracle on a real model, per outage size.
# EXPERIMENT=tenant replays tenant A's 5× flash crowd against tenant B's
# steady SLO-bound traffic through the WDRR multi-tenant scheduler vs a
# shared queue: B's served p99 stays at its quiet baseline behind WDRR
# while the shared queue blows through the SLO, and a saturation arm shows
# served shares tracking the 3:1 weights within ±10%. Deterministic.
# EXPERIMENT=deploy drives three model-release rollouts through the
# SLO-guarded canary controller under live load: a good release promotes
# fleet-wide via hot swap (zero dropped requests), a latency-regressing
# release is caught on the canary slice and auto-rolled-back (blast radius
# = canary-served fraction), and a bit-flipped release fails checksum
# verification on every pod and is quarantined without serving a byte.
# EXPERIMENT=procs re-runs the supervised-crash and rolling-update studies
# against real etude-server processes (SIGKILL chaos, SIGTERM drains) and
# compares measured MTTR against the in-process substrate, plus a
# cold-start distribution from repeated real spawns.
# PODS=proc runs the cluster-backed experiments (rolling, deploy) on real
# processes instead of in-process pods.
benchmark: bin/etude-server
	ETUDE_SERVER_BIN=$(CURDIR)/bin/etude-server go run ./cmd/etude benchmark -experiment $(EXPERIMENT) -scale $(SCALE) -pods $(PODS)

# Run an experiment under the CPU profiler and open the hot-path report:
#   make profile EXPERIMENT=breakdown
profile:
	go run ./cmd/etude benchmark -experiment $(EXPERIMENT) -scale $(SCALE) -cpuprofile cpu.out
	go tool pprof -top -nodecount 15 cpu.out

# Automatic instance-type choice for a declarative workload.
advise:
	go run ./cmd/etude advise -model $(MODEL) -catalog $(CATALOG) -rate $(RATE)

clean:
	rm -rf $(BUCKET) bin
