// Platform sweep: how does inference latency grow with the catalog, and
// when do accelerators pay off? This example reproduces the shape of the
// paper's micro-benchmark (Fig 3) for one model across catalog sizes from
// 10 thousand to 20 million items on all three instance types, in both
// eager and JIT execution — then runs the end-to-end platform scenario
// (C=2e7, 1,000 req/s) on the simulator to show that only the A100 fleet
// survives it.
//
//	go run ./examples/platform_sweep
package main

import (
	"fmt"
	"log"
	"time"

	"etude/internal/core"
	"etude/internal/device"
	"etude/internal/experiments"
	"etude/internal/model"
)

func main() {
	const modelName = "sasrec"

	// Part 1: serial latency vs catalog size (Fig 3 shape, cost-model mode).
	fig3, err := experiments.Fig3(experiments.Fig3Config{
		Models:       []string{modelName},
		CatalogSizes: []int{10_000, 100_000, 1_000_000, 10_000_000, 20_000_000},
		Devices:      []string{"cpu", "gpu-t4", "gpu-a100"},
		Requests:     100,
		Mode:         experiments.Fig3Modeled,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig3.Render())

	// Part 2: the platform scenario end-to-end, per instance type.
	fmt.Println("Platform scenario (C=2e7, ramp to 1,000 req/s, 3 instances each):")
	for _, inst := range []string{"gpu-t4", "gpu-a100"} {
		ms, err := core.RunSim(core.Spec{
			Name:        "platform",
			Models:      []string{modelName},
			Instances:   []string{inst},
			CatalogSize: 20_000_000,
			JIT:         true,
			TargetRate:  1000,
			Duration:    60 * time.Second,
			Replicas:    3,
			Seed:        1,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := ms[0]
		spec, _ := device.ByName(inst)
		verdict := "FAILS"
		if m.MeetsSLO {
			verdict = "meets the SLO"
		}
		fmt.Printf("  3 × %-9s ($%.0f/month): p90 %v, %d errors, %d shed — %s\n",
			inst, 3*spec.MonthlyCostUSD, m.Latency.P90.Round(time.Millisecond),
			m.Errors, m.Backpressured, verdict)
	}
	fmt.Printf("\n(models excluded from the paper's Table I: %v)\n", model.BrokenModels())
}
