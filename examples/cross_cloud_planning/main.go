// Cross-cloud planning: the paper's future work includes supporting
// "additional cloud environments such as Microsoft Azure or Amazon Web
// Services" and "the automatic choice of appropriate instance types for
// declaratively specified workloads". This example exercises both: the
// advisor sizes and validates fleets for the e-Commerce workload
// (C=10M, 1,000 req/s) on simulated hardware, then prices the winning
// fleets on GCP, AWS and Azure.
//
//	go run ./examples/cross_cloud_planning
package main

import (
	"fmt"
	"log"

	"etude/internal/advisor"
)

func main() {
	advice, err := advisor.Advise(advisor.Request{
		Model:       "gru4rec",
		CatalogSize: 10_000_000,
		TargetRate:  1000,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(advice.Render())

	fmt.Println("\nall cloud options (cheapest first):")
	for _, o := range advice.CloudOptions {
		fmt.Printf("  %s\n", o)
	}
}
