// Latency/quality trade-off: the paper's future-work section proposes
// trading prediction quality for inference latency with model quantisation
// and approximate nearest-neighbour search. This example measures both on a
// real model: the exact float32 MIPS stage is compared against int8
// quantised scoring and IVF search at several probe counts, reporting
// measured latency and recall@21 against the exact top-k.
//
//	go run ./examples/latency_quality_tradeoff
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"etude/internal/ann"
	"etude/internal/model"
	"etude/internal/nn"
	"etude/internal/quant"
	"etude/internal/tensor"
	"etude/internal/topk"
)

const (
	catalog = 200_000
	queries = 50
	k       = model.DefaultTopK
)

func main() {
	// The catalog representation every SBR model scores against: the item
	// embedding table (here taken from a freshly initialised model).
	in := nn.NewInitializer(42)
	items := in.Xavier(catalog, 32)
	fmt.Printf("catalog: %d items × 32 dims (%.1f MB float32)\n\n", catalog, float64(catalog*32*4)/1e6)

	// Random session representations stand in for encoder outputs.
	rng := rand.New(rand.NewSource(7))
	queriesT := make([]*tensor.Tensor, queries)
	for i := range queriesT {
		q := tensor.New(32)
		for j := range q.Data() {
			q.Data()[j] = float32(rng.NormFloat64())
		}
		queriesT[i] = q
	}
	exact := make([][]topk.Result, queries)
	start := time.Now()
	for i, q := range queriesT {
		exact[i] = topk.TopK(items, q, k)
	}
	exactLat := time.Since(start) / queries
	fmt.Printf("%-24s %12s %10s\n", "method", "latency", "recall@21")
	fmt.Printf("%-24s %12s %10s\n", "exact float32", exactLat.Round(time.Microsecond), "1.000")

	// Int8 quantisation: ~4x less memory traffic.
	table, err := quant.Quantize(items)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	var recallSum float64
	for i, q := range queriesT {
		approx, err := table.TopK(q, k)
		if err != nil {
			log.Fatal(err)
		}
		recallSum += quant.Recall(exact[i], approx)
	}
	qLat := time.Since(start) / queries
	fmt.Printf("%-24s %12s %10.3f   (table: %.1f MB)\n",
		"int8 quantised", qLat.Round(time.Microsecond), recallSum/queries, float64(table.MemoryBytes())/1e6)

	// IVF approximate search at increasing probe counts.
	index, err := ann.Build(items, ann.Config{NLists: 256, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, nprobe := range []int{4, 16, 64, 256} {
		start = time.Now()
		recallSum = 0
		for i, q := range queriesT {
			approx, err := index.Search(q, k, nprobe)
			if err != nil {
				log.Fatal(err)
			}
			recallSum += quant.Recall(exact[i], approx)
		}
		lat := time.Since(start) / queries
		fmt.Printf("%-24s %12s %10.3f   (scans %.0f%% of catalog)\n",
			fmt.Sprintf("IVF nprobe=%d/256", nprobe), lat.Round(time.Microsecond),
			recallSum/queries, index.ScannedFraction(nprobe)*100)
	}
}
