// Quickstart: build an SBR model, serve it over HTTP through the ETUDE
// inference server, and load test it with the backpressure-aware generator
// — the whole pipeline in one file.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"etude/internal/loadgen"
	"etude/internal/model"
	"etude/internal/server"
	"etude/internal/workload"
)

func main() {
	// 1. Build a session-based recommendation model. Weights are random:
	// ETUDE measures inference performance, not prediction quality.
	m, err := model.New("gru4rec", model.Config{CatalogSize: 10_000, Seed: 42, TopK: 5})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Ask for recommendations directly.
	session := []int64{17, 4301, 998}
	fmt.Println("session:", session)
	for i, rec := range m.Recommend(session) {
		fmt.Printf("  #%d item %d (score %.3f)\n", i+1, rec.Item, rec.Score)
	}

	// 3. Serve the model with the JIT-compiled execution plan.
	srv, err := server.New(m, server.Options{Workers: 4, JIT: true})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("\nserving on", ts.URL, "(JIT active:", srv.JITActive(), ")")

	// 4. Generate a synthetic click workload from two power-law marginals
	// (Algorithm 1) and ramp the load to 200 req/s (Algorithm 2).
	alphaLength, alphaClicks := workload.BolMarginals()
	gen, err := workload.NewGenerator(workload.Spec{
		CatalogSize: 10_000,
		NumClicks:   1,
		AlphaLength: alphaLength,
		AlphaClicks: alphaClicks,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		TargetRate: 200,
		Duration:   5 * time.Second,
	}, gen, loadgen.NewHTTPTarget(ts.URL))
	if err != nil {
		log.Fatal(err)
	}

	// 5. Read the verdict.
	snap := res.Recorder.Overall()
	fmt.Printf("\nload test: %d requests, %d errors, %d backpressured\n",
		res.Recorder.Sent(), res.Recorder.Errors(), res.Backpressured)
	fmt.Printf("latency:   %s\n", snap)
	if snap.P90 <= 50*time.Millisecond && res.Recorder.Errors() == 0 {
		fmt.Println("verdict:   meets the 50ms p90 SLO on this machine")
	} else {
		fmt.Println("verdict:   does NOT meet the 50ms p90 SLO on this machine")
	}
}
