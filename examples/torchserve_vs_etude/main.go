// TorchServe vs ETUDE: the paper's infrastructure validation (Fig 2), live
// on this machine. Both servers return empty responses — no model inference
// at all — while the load generator ramps up. The ETUDE server absorbs the
// load at ≈1ms p90 with zero errors; the TorchServe baseline saturates at
// workers/IPC-overhead requests per second, stacks its queue up to the
// internal 100ms timeout, and starts throwing HTTP errors.
//
//	go run ./examples/torchserve_vs_etude
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"etude/internal/experiments"
	"etude/internal/torchserve"
)

func main() {
	cfg := experiments.Fig2Config{
		TargetRate: 700, // scaled from the paper's 1,000 req/s / 10 min
		Duration:   8 * time.Second,
		Tick:       500 * time.Millisecond,
		TorchServe: torchserve.DefaultConfig(),
		Seed:       1,
	}
	fmt.Printf("ramping to %.0f req/s over %v against both servers...\n\n", cfg.TargetRate, cfg.Duration)
	res, err := experiments.Fig2(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("per-tick error counts (torchserve):")
	for _, ts := range res.TorchServe.Series {
		bar := ""
		for i := int64(0); i < ts.Errors/10; i++ {
			bar += "#"
		}
		fmt.Printf("  tick %2d: sent %4d, errors %4d %s\n", ts.Tick, ts.Sent, ts.Errors, bar)
	}
}
