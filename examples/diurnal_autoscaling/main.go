// Diurnal autoscaling: e-Commerce traffic swings between quiet nights and
// busy evenings, so a fleet sized statically for the peak wastes most of
// its capacity. This example simulates two "days" of a diurnal load curve
// (trough 40 req/s, peak 500 req/s, C=1e6) against a static peak-sized CPU
// fleet and against the utilisation-driven autoscaler, and prints the
// replica timeline and the monthly bill of each.
//
//	go run ./examples/diurnal_autoscaling
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"etude/internal/autoscale"
	"etude/internal/device"
	"etude/internal/model"
)

func main() {
	profile := autoscale.DiurnalProfile(40, 500, 240)
	const day = 480 * time.Second
	base := autoscale.Config{
		Device:   device.CPU(),
		Model:    "gru4rec",
		ModelCfg: model.Config{CatalogSize: 1_000_000, Seed: 1},
		JIT:      true,
		Interval: 5 * time.Second,
		Seed:     1,
	}

	staticCfg := base
	staticCfg.MinReplicas, staticCfg.MaxReplicas = 4, 4
	static, err := autoscale.Run(staticCfg, profile, day)
	if err != nil {
		log.Fatal(err)
	}
	autoCfg := base
	autoCfg.MinReplicas, autoCfg.MaxReplicas = 1, 4
	auto, err := autoscale.Run(autoCfg, profile, day)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("replica timeline (one char per 8 simulated seconds):")
	fmt.Printf("  load    %s\n", sparkline(sample(loadSeries(profile, int(day/time.Second)), 8)))
	fmt.Printf("  static  %s\n", sparkline(sample(toFloats(static.Replicas), 8)))
	fmt.Printf("  auto    %s\n", sparkline(sample(toFloats(auto.Replicas), 8)))

	fmt.Printf("\n%-10s %16s %12s %10s %8s\n", "fleet", "instance-seconds", "cost/month", "p90", "errors")
	for _, row := range []struct {
		name string
		res  *autoscale.Result
	}{{"static×4", static}, {"autoscaled", auto}} {
		fmt.Printf("%-10s %16.0f %12s %10v %8d\n",
			row.name, row.res.InstanceSeconds,
			fmt.Sprintf("$%.0f", row.res.MonthlyUSD(device.CPU(), day)),
			row.res.Recorder.Overall().P90.Round(time.Millisecond),
			row.res.Recorder.Errors())
	}
	fmt.Printf("\nsaving: %.0f%% of the monthly bill at the same SLO\n",
		(1-auto.InstanceSeconds/static.InstanceSeconds)*100)
}

func loadSeries(p autoscale.Profile, seconds int) []float64 {
	out := make([]float64, seconds)
	for i := range out {
		out[i] = p(i)
	}
	return out
}

func toFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func sample(xs []float64, stride int) []float64 {
	var out []float64
	for i := 0; i < len(xs); i += stride {
		out = append(out, xs[i])
	}
	return out
}

func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	maxV := xs[0]
	for _, v := range xs[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range xs {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
