// Grocery capacity planning: a data scientist at a grocery brand wants to
// know which instance type to rent for a 100k-item catalog at 250 req/s —
// the paper's "Groceries (large)" scenario. This example runs simulated
// capacity searches per model and instance type, sizes the fleets and
// prints the cost-efficient choice, Table I style.
//
//	go run ./examples/grocery_capacity_planning
package main

import (
	"fmt"
	"log"

	"etude/internal/costmodel"
	"etude/internal/device"
	"etude/internal/model"
	"etude/internal/sim"
)

func main() {
	scenario, err := costmodel.ScenarioByName("Groceries (large)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s — catalog %d items, target %.0f req/s, p90 ≤ %v\n\n",
		scenario.Name, scenario.CatalogSize, scenario.TargetRate, costmodel.LatencySLO)

	fmt.Printf("%-10s %-10s %14s %22s\n", "model", "instance", "capacity", "fleet")
	for _, name := range model.TableIModels() {
		var options []costmodel.Option
		for _, spec := range device.All() {
			cfg := model.Config{CatalogSize: scenario.CatalogSize, Seed: 1}
			capacity, err := sim.Capacity(spec, name, cfg, true, costmodel.LatencySLO)
			if err != nil {
				log.Fatal(err)
			}
			opt := costmodel.Plan(spec, capacity, scenario)
			options = append(options, opt)
			fmt.Printf("%-10s %-10s %12.0f/s %22s\n", name, spec.Name, capacity, opt)
		}
		if best, ok := costmodel.Cheapest(options); ok {
			fmt.Printf("%-10s → cheapest: %s\n\n", name, best)
		} else {
			fmt.Printf("%-10s → no feasible deployment\n\n", name)
		}
	}
}
